//! The four dataset presets replicating Table II's shapes (see crate docs
//! and DESIGN.md §2 for the substitution argument).

use crate::spec::{AttrSpec, DatasetSpec, RelSpec, Side, TypeSpec};

/// Names of all presets in paper order (plus the `TINY` fixture preset,
/// which is not part of Table II).
pub const PRESET_NAMES: [&str; 4] = ["IIMB", "D-A", "I-Y", "D-Y"];

/// Looks up a preset by its Table II abbreviation (case-insensitive).
/// `TINY` resolves to the fixture preset [`tiny`].
pub fn preset_by_name(name: &str, scale: f64) -> Option<DatasetSpec> {
    match name.to_ascii_uppercase().as_str() {
        "IIMB" => Some(iimb(scale)),
        "D-A" | "DBLP-ACM" => Some(dblp_acm(scale)),
        "I-Y" | "IMDB-YAGO" => Some(imdb_yago(scale)),
        "D-Y" | "DBPEDIA-YAGO" => Some(dbpedia_yago(scale)),
        "TINY" => Some(tiny(scale)),
        _ => None,
    }
}

/// TINY: a deliberately small two-KB world (≈ 40 entities per KB at
/// scale 1.0) used for committed fixtures, ingestion round-trip tests
/// and CI smoke runs. Not a Table II dataset — just big enough that the
/// pipeline asks questions, propagates matches and finishes in
/// milliseconds. Fully deterministic under its fixed seed, so the
/// fixtures under `tests/fixtures/` stay byte-stable.
pub fn tiny(scale: f64) -> DatasetSpec {
    let mut person = TypeSpec::new("person", 28);
    person.name_pool = 60;
    person.common_pool = 8;
    person.common_frac = 0.3;
    person.attrs = vec![
        AttrSpec::name("name", "label"),
        AttrSpec::year("born", "birthDate").with_present(0.8),
        AttrSpec::text("job", "occupation", 1, 10).with_present(0.6).with_noise(0.15),
    ];
    person.rels = vec![
        RelSpec::new("livesIn", "residence", 1, (1, 1)),
        RelSpec::new("knows", "acquaintedWith", 0, (0, 2)),
    ];
    person.isolated_frac = 0.05;
    person.sloppy_frac = 0.05;

    let mut city = TypeSpec::new("city", 12);
    city.name_pool = 25;
    city.attrs = vec![
        AttrSpec::name("cityName", "cityLabel"),
        AttrSpec::number("population", "hasPopulation", 1e3, 1e6).with_present(0.7),
    ];
    city.rels = vec![RelSpec::new("partOf", "locatedIn", 1, (0, 1))];

    DatasetSpec {
        name: "tiny".into(),
        seed: 0x7147,
        types: vec![person, city],
        label_noise1: 0.05,
        label_noise2: 0.08,
        missing_label1: 0.0,
        missing_label2: 0.0,
        closure: 0.9,
    }
    .scaled(scale)
}

/// IIMB: a small synthetic OAEI benchmark — two KBs with *identical*
/// schemas (12 attributes, 15 relationships in the paper), full overlap
/// (365 entities ↔ 365 matches) and light value noise.
pub fn iimb(scale: f64) -> DatasetSpec {
    let mut person = TypeSpec::new("person", 150);
    person.name_pool = 380;
    person.common_pool = 40;
    person.common_frac = 0.3;
    person.attrs = vec![
        AttrSpec::name("name", "name"),
        AttrSpec::year("birthYear", "birthYear").with_present(0.7),
        AttrSpec::text("nationality", "nationality", 1, 12).with_present(0.6).with_noise(0.15),
        AttrSpec::text("occupation", "occupation", 1, 20).with_present(0.55).with_noise(0.15),
    ];
    person.rels = vec![
        RelSpec::new("actedIn", "actedIn", 1, (1, 3)),
        RelSpec::new("bornIn", "bornIn", 2, (1, 1)),
        RelSpec::new("knows", "knows", 0, (0, 2)),
    ];
    person.isolated_frac = 0.02;
    person.sloppy_frac = 0.05;

    let mut film = TypeSpec::new("film", 120);
    film.name_pool = 320;
    film.common_pool = 30;
    film.common_frac = 0.25;
    film.attrs = vec![
        AttrSpec::name("title", "title"),
        AttrSpec::year("released", "released").with_present(0.7),
        AttrSpec::text("genre", "genre", 1, 10).with_present(0.6).with_noise(0.15),
        AttrSpec::text("language", "language", 1, 8).with_present(0.55).with_noise(0.15),
    ];
    film.sloppy_frac = 0.08;
    film.rels = vec![
        RelSpec::new("directedBy", "directedBy", 0, (1, 1)),
        RelSpec::new("filmedIn", "filmedIn", 2, (1, 2)),
    ];

    let mut location = TypeSpec::new("location", 95);
    location.name_pool = 220;
    location.common_pool = 25;
    location.common_frac = 0.2;
    location.attrs = vec![
        AttrSpec::name("locName", "locName"),
        AttrSpec::number("population", "population", 1e3, 1e7).with_present(0.5),
        AttrSpec::text("country", "country", 1, 15).with_present(0.65).with_noise(0.15),
        AttrSpec::text("region", "region", 1, 25).with_present(0.5).with_noise(0.15),
    ];
    location.rels = vec![RelSpec::new("partOf", "partOf", 2, (0, 1))];
    location.isolated_frac = 0.03;
    location.sloppy_frac = 0.08;

    DatasetSpec {
        name: "IIMB".into(),
        seed: 0x11_B0,
        types: vec![person, film, location],
        label_noise1: 0.04,
        label_noise2: 0.08,
        missing_label1: 0.0,
        missing_label2: 0.0,
        closure: 0.0,
    }
    .scaled(scale)
}

/// DBLP-ACM: bibliographic data — publications with authorship splits.
/// Asymmetric KB sizes (≈ 1 : 8 in our scaling of the paper's
/// 2.61K / 64.3K), 3 attributes, a *single* relationship type, very clean
/// labels. The single relationship and many isolated components are what
/// limits Remp's advantage here (paper §VIII-A observation 4).
pub fn dblp_acm(scale: f64) -> DatasetSpec {
    let mut publication = TypeSpec::new("pub", 500);
    publication.name_tokens = (3, 5);
    publication.name_pool = 900;
    publication.common_pool = 25;
    publication.common_frac = 0.3;
    publication.attrs = vec![
        AttrSpec::name("title", "title").with_noise(0.04),
        AttrSpec::text("venue", "booktitle", 1, 12).with_noise(0.1),
        AttrSpec::year("year", "yr"),
    ];
    publication.rels = vec![RelSpec::new("writtenBy", "authoredBy", 1, (1, 3))];
    publication.sloppy_frac = 0.05;
    publication.kb1_keep = 0.35;
    publication.kb2_keep = 0.95;

    let mut author = TypeSpec::new("author", 1500);
    author.name_tokens = (2, 3);
    author.name_pool = 1100;
    // Given names: a small shared pool creates many same-given-name
    // author candidates, the bulk of D-A's 49% reduction ratio.
    author.common_pool = 14;
    author.common_frac = 0.5;
    author.attrs = vec![AttrSpec::name("authorName", "name").with_noise(0.05)];
    author.sloppy_frac = 0.05;
    author.isolated_frac = 0.03;
    author.kb1_keep = 0.02;
    author.kb2_keep = 0.95;

    DatasetSpec {
        name: "D-A".into(),
        seed: 0xDA,
        types: vec![publication, author],
        label_noise1: 0.04,
        label_noise2: 0.04,
        missing_label1: 0.0,
        missing_label2: 0.0,
        closure: 0.95,
    }
    .scaled(scale)
}

/// IMDB-YAGO: movie domain, heterogeneous schemas — only 4 attribute
/// pairs truly match (Table IV) among 14 vs 36 attributes; label evidence
/// is weak (the paper credits Remp's win to relational inference here);
/// 28% of matches are isolated (Table VIII).
pub fn imdb_yago(scale: f64) -> DatasetSpec {
    let mut person = TypeSpec::new("person", 1400);
    person.name_tokens = (2, 2);
    person.name_pool = 1000;
    person.common_pool = 10;
    person.common_frac = 0.5;
    person.attrs = vec![
        AttrSpec::name("name", "label").with_noise(0.1),
        AttrSpec::year("birthYear", "bornOn"),
        // KB-specific attributes (no true counterpart).
        AttrSpec::junk("imdbRank", Side::Kb1Only),
        AttrSpec::junk("height", Side::Kb1Only),
        AttrSpec::junk_name("imdbPage", Side::Kb1Only),
        AttrSpec::junk_name("yagoId", Side::Kb2Only),
        AttrSpec::junk_name("wikiPage", Side::Kb2Only),
        AttrSpec::junk("gloss", Side::Kb2Only),
        AttrSpec::junk("transcription", Side::Kb2Only),
        AttrSpec::junk("wordnet", Side::Kb2Only),
    ];
    person.rels = vec![
        RelSpec::new("actedIn", "actedIn", 1, (1, 4)),
        RelSpec::new("directed", "directorOf", 1, (0, 1)),
        RelSpec::new("bornIn", "wasBornIn", 2, (1, 1)),
        RelSpec::junk("imdbFavourite", 0, Side::Kb1Only),
        RelSpec::junk("yagoLink1", 1, Side::Kb2Only),
        RelSpec::junk("yagoLink2", 2, Side::Kb2Only),
    ];
    person.sloppy_frac = 0.12;
    person.isolated_frac = 0.3;
    person.kb1_keep = 0.9;
    person.kb2_keep = 0.3;

    let mut movie = TypeSpec::new("movie", 900);
    movie.name_tokens = (2, 4);
    movie.name_pool = 800;
    movie.common_pool = 10;
    movie.common_frac = 0.45;
    movie.attrs = vec![
        // "name"/"label" is the same attribute id as on persons (interned
        // by name): real KBs share rdfs:label across all types, which is
        // why I-Y's gold standard has only 4 attribute matches.
        AttrSpec::name("name", "label").with_noise(0.1),
        AttrSpec::year("releaseYear", "publishedOn"),
        AttrSpec::text("language", "inLanguage", 1, 10).with_noise(0.1),
        AttrSpec::junk("imdbScore", Side::Kb1Only),
        AttrSpec::junk("plot", Side::Kb1Only),
        AttrSpec::junk("yagoCategory", Side::Kb2Only),
        AttrSpec::junk("infoboxType", Side::Kb2Only),
    ];
    movie.rels = vec![
        RelSpec::new("filmedIn", "locatedIn", 2, (0, 2)),
        RelSpec::junk("yagoLink3", 0, Side::Kb2Only),
    ];
    movie.sloppy_frac = 0.12;
    movie.isolated_frac = 0.25;
    movie.kb1_keep = 0.9;
    movie.kb2_keep = 0.3;

    let mut place = TypeSpec::new("place", 250);
    place.name_pool = 300;
    place.common_pool = 8;
    place.common_frac = 0.4;
    place.attrs = vec![
        // Places share the cross-type "name"/"label" attribute; their other
        // attributes are KB-specific. Total I-Y attribute gold: name/label,
        // birthYear/bornOn, releaseYear/publishedOn, language/inLanguage
        // = 4 (Table IV).
        AttrSpec::name("name", "label").with_noise(0.08),
        AttrSpec::junk("imdbLocation", Side::Kb1Only),
        AttrSpec::junk("population", Side::Kb2Only),
    ];
    place.rels = vec![RelSpec::new("inCountry", "locatedIn2", 2, (0, 1))];
    place.sloppy_frac = 0.12;
    place.isolated_frac = 0.2;
    place.kb1_keep = 0.9;
    place.kb2_keep = 0.5;

    DatasetSpec {
        name: "I-Y".into(),
        seed: 0x1A60,
        types: vec![person, movie, place],
        label_noise1: 0.08,
        label_noise2: 0.08,
        missing_label1: 0.005,
        missing_label2: 0.005,
        closure: 0.6,
    }
    .scaled(scale)
}

/// DBpedia-YAGO: the hardest shape — many entity types without clear type
/// information, a large KB1-specific attribute tail (684 vs 36 in the
/// paper; 19 true matches per its Table IV), 8.4% missing labels capping
/// pair completeness at ≈ 88%, and a 60% isolated-match fraction
/// (Table VIII).
pub fn dbpedia_yago(scale: f64) -> DatasetSpec {
    let mk_junk1 = |i: usize| AttrSpec::junk(&format!("dbpProp{i}"), Side::Kb1Only);

    let mut person = TypeSpec::new("person", 1200);
    person.name_pool = 850;
    person.common_pool = 12;
    person.common_frac = 0.5;
    person.attrs = vec![
        AttrSpec::name("name", "label").with_noise(0.08),
        AttrSpec::year("birthDate", "wasBornOnDate"),
        AttrSpec::year("deathDate", "diedOnDate").with_present(0.4),
        AttrSpec::text("almaMater", "graduatedFrom", 1, 50).with_noise(0.12),
        AttrSpec::text("nationality", "isCitizenOf", 1, 25).with_noise(0.12),
        AttrSpec::number("height", "hasHeight", 1.4, 2.1).with_present(0.3),
    ];
    person.attrs.push(AttrSpec::junk_name("dbpWikiUrl", Side::Kb1Only));
    person.attrs.extend((0..5).map(mk_junk1));
    person.rels = vec![
        RelSpec::new("birthPlace", "wasBornIn", 3, (1, 1)),
        RelSpec::new("deathPlace", "diedIn", 3, (0, 1)),
        RelSpec::new("spouse", "isMarriedTo", 0, (0, 1)),
        RelSpec::new("employer", "worksAt", 2, (1, 2)),
        RelSpec::junk("dbpRel1", 0, Side::Kb1Only),
        RelSpec::junk("dbpRel2", 1, Side::Kb1Only),
    ];
    person.sloppy_frac = 0.05;
    person.isolated_frac = 0.6;
    person.kb1_keep = 0.8;
    person.kb2_keep = 0.75;

    let mut work = TypeSpec::new("work", 1000);
    work.name_tokens = (2, 4);
    work.name_pool = 750;
    work.common_pool = 10;
    work.common_frac = 0.45;
    work.attrs = vec![
        AttrSpec::name("workTitle", "workLabel").with_noise(0.08),
        AttrSpec::year("published", "createdOnDate"),
        AttrSpec::text("genre", "genreLabel", 1, 15).with_noise(0.1),
        AttrSpec::text("language", "inLanguage", 1, 10).with_noise(0.1),
        AttrSpec::number("pages", "hasPages", 50.0, 900.0).with_present(0.3),
    ];
    work.attrs.push(AttrSpec::junk_name("dbpWorkUrl", Side::Kb1Only));
    work.attrs.extend((6..11).map(mk_junk1));
    work.rels = vec![
        RelSpec::new("author", "created", 0, (1, 3)),
        RelSpec::new("publisher", "publishedBy", 2, (1, 1)),
        RelSpec::new("setIn", "happenedIn", 3, (0, 1)),
        RelSpec::junk("dbpRel3", 1, Side::Kb1Only),
    ];
    work.sloppy_frac = 0.05;
    work.isolated_frac = 0.55;
    work.kb1_keep = 0.8;
    work.kb2_keep = 0.75;

    let mut org = TypeSpec::new("org", 600);
    org.name_pool = 450;
    org.common_pool = 8;
    org.common_frac = 0.4;
    org.attrs = vec![
        AttrSpec::name("orgName", "orgLabel").with_noise(0.08),
        AttrSpec::year("founded", "wasCreatedOnDate"),
        AttrSpec::text("industry", "inIndustry", 1, 18).with_noise(0.15),
        AttrSpec::number("employees", "hasEmployees", 10.0, 1e5).with_present(0.4),
    ];
    org.attrs.extend((12..17).map(mk_junk1));
    org.rels = vec![
        RelSpec::new("headquarter", "isLocatedIn", 3, (1, 1)),
        RelSpec::junk("dbpRel4", 3, Side::Kb1Only),
    ];
    org.sloppy_frac = 0.05;
    org.isolated_frac = 0.55;
    org.kb1_keep = 0.8;
    org.kb2_keep = 0.75;

    let mut place = TypeSpec::new("place", 800);
    place.name_pool = 550;
    place.common_pool = 10;
    place.common_frac = 0.4;
    place.attrs = vec![
        AttrSpec::name("placeName", "placeLabel").with_noise(0.1),
        AttrSpec::number("population", "hasPopulation", 1e3, 1e7),
        AttrSpec::text("country", "inCountry", 1, 20).with_noise(0.1),
        AttrSpec::year("established", "wasFoundedOnDate").with_present(0.4),
    ];
    place.attrs.extend((17..22).map(mk_junk1));
    place.rels = vec![
        RelSpec::new("partOf", "isLocatedIn2", 3, (1, 1)),
        RelSpec::junk("dbpRel5", 3, Side::Kb1Only),
    ];
    place.sloppy_frac = 0.05;
    place.isolated_frac = 0.5;
    place.kb1_keep = 0.8;
    place.kb2_keep = 0.75;

    DatasetSpec {
        name: "D-Y".into(),
        seed: 0xD1A6,
        types: vec![person, work, org, place],
        label_noise1: 0.08,
        label_noise2: 0.08,
        missing_label1: 0.084,
        missing_label2: 0.04,
        closure: 0.85,
    }
    .scaled(scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn all_presets_resolve_by_name() {
        for name in PRESET_NAMES {
            assert!(preset_by_name(name, 1.0).is_some(), "{name}");
        }
        assert!(preset_by_name("tiny", 1.0).is_some());
        assert!(preset_by_name("nope", 1.0).is_none());
    }

    #[test]
    fn tiny_is_small_and_connected() {
        let d = generate(&tiny(1.0));
        assert!(d.kb1.num_entities() <= 60, "{}", d.kb1.num_entities());
        assert!(d.num_gold() > 10, "{}", d.num_gold());
        assert!(d.kb1.num_rel_triples() > 0);
        let frac = d.kb1.stats().isolated_fraction();
        assert!(frac < 0.5, "tiny should be mostly connected: {frac}");
    }

    #[test]
    fn iimb_shape() {
        let d = generate(&iimb(1.0));
        // Identical schemas: every attribute/relationship matches.
        assert_eq!(d.kb1.num_attrs(), d.kb2.num_attrs());
        assert_eq!(d.kb1.num_rels(), d.kb2.num_rels());
        // Full overlap.
        assert_eq!(d.num_gold(), d.kb1.num_entities());
        assert_eq!(d.kb1.num_entities(), 365);
    }

    #[test]
    fn dblp_acm_is_asymmetric() {
        let d = generate(&dblp_acm(1.0));
        let (n1, n2) = (d.kb1.num_entities(), d.kb2.num_entities());
        assert!(n2 > 3 * n1, "expected KB2 ≫ KB1, got {n1} vs {n2}");
        assert_eq!(d.kb1.num_rels(), 1, "single relationship type");
    }

    #[test]
    fn imdb_yago_attr_gold_is_small() {
        let d = generate(&imdb_yago(1.0));
        // 4 true attribute matches (Table IV).
        assert_eq!(d.gold_attr_matches.len(), 4, "{:?}", d.gold_attr_matches);
        assert!(d.kb2.num_attrs() > d.kb1.num_attrs() - 5, "KB2 has the junk tail");
    }

    #[test]
    fn dbpedia_yago_attr_gold_is_19() {
        let d = generate(&dbpedia_yago(1.0));
        // 19 true attribute matches (paper Table IV).
        assert_eq!(d.gold_attr_matches.len(), 19, "{:?}", d.gold_attr_matches);
        assert!(d.kb1.num_attrs() > d.kb2.num_attrs(), "KB1 carries the dbpProp tail");
    }

    #[test]
    fn dbpedia_yago_is_mostly_isolated() {
        let d = generate(&dbpedia_yago(0.5));
        let frac = d.kb1.stats().isolated_fraction();
        assert!(frac > 0.35, "isolated fraction {frac}");
    }

    #[test]
    fn scaling_shrinks_datasets() {
        let full = generate(&imdb_yago(0.5));
        let small = generate(&imdb_yago(0.25));
        assert!(small.kb1.num_entities() < full.kb1.num_entities());
        assert!(small.num_gold() < full.num_gold());
    }
}
