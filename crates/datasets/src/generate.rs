//! The two-KB world generator.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use remp_kb::{EntityId, Kb, KbBuilder, Value};

use crate::spec::{AttrKind, DatasetSpec, Side};

/// A generated dataset: two KBs plus the gold standards every experiment
/// evaluates against.
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// Dataset name.
    pub name: String,
    /// The first KB.
    pub kb1: Kb,
    /// The second KB.
    pub kb2: Kb,
    /// Gold entity matches (reference matches of §III-A).
    pub gold: HashSet<(EntityId, EntityId)>,
    /// Gold attribute matches as `(kb1 name, kb2 name)` (Table IV).
    pub gold_attr_matches: Vec<(String, String)>,
    /// Gold relationship matches as `(kb1 name, kb2 name)`.
    pub gold_rel_matches: Vec<(String, String)>,
}

impl GeneratedDataset {
    /// Whether `(u1, u2)` is a true match.
    pub fn is_match(&self, u1: EntityId, u2: EntityId) -> bool {
        self.gold.contains(&(u1, u2))
    }

    /// Number of gold matches.
    pub fn num_gold(&self) -> usize {
        self.gold.len()
    }
}

/// Deterministic pseudo-word for token pools: index → "kelora"-style word.
fn word(i: usize) -> String {
    const SYLLABLES: [&str; 16] = [
        "ba", "ke", "li", "mo", "nu", "ra", "sa", "ti", "vo", "zu", "an", "el", "ir", "or", "ul",
        "en",
    ];
    let mut out = String::new();
    let mut x = i;
    // 3 syllables cover 4096 distinct words; longer indexes extend.
    for _ in 0..3 {
        out.push_str(SYLLABLES[x % SYLLABLES.len()]);
        x /= SYLLABLES.len();
    }
    if x > 0 {
        out.push_str(&x.to_string());
    }
    out
}

/// Draws one name token for a type: the *first* slot may come from the
/// small common pool (given names, frequent title words) with
/// `common_frac`; later slots always draw from the large rare pool.
/// Restricting commonality to one slot yields realistic collision
/// structure: many entities share a token (blocking bloat) but full-name
/// doppelgängers stay rare.
fn sample_name_token(
    ti: usize,
    slot: usize,
    t: &crate::spec::TypeSpec,
    rng: &mut StdRng,
) -> String {
    if slot == 0 && t.common_pool > 0 && rng.gen_bool(t.common_frac.clamp(0.0, 1.0)) {
        word(ti * 10_000 + 5_000 + rng.gen_range(0..t.common_pool))
    } else {
        word(ti * 10_000 + rng.gen_range(0..t.name_pool))
    }
}

/// One world object.
struct WorldObject {
    type_idx: usize,
    /// Name tokens (pool indexes into the type's pool).
    name: Vec<String>,
    /// World attribute values: (type-local attr index, value).
    attrs: Vec<(usize, Value)>,
    /// World edges: (type-local rel index, target object id).
    edges: Vec<(usize, usize)>,
    isolated: bool,
    /// Sloppy objects have sparser, noisier attribute values.
    sloppy: bool,
}

/// Generates the dataset for `spec` (deterministic under `spec.seed`).
pub fn generate(spec: &DatasetSpec) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // ---- World objects ------------------------------------------------
    let mut objects: Vec<WorldObject> = Vec::with_capacity(spec.total_objects());
    let mut type_ranges: Vec<(usize, usize)> = Vec::new(); // object-id ranges per type
    for (ti, t) in spec.types.iter().enumerate() {
        let start = objects.len();
        for _ in 0..t.count {
            let n_tokens = rng.gen_range(t.name_tokens.0..=t.name_tokens.1.max(t.name_tokens.0));
            // Offset pools by type so types have distinct (but overlapping
            // via small pools) vocabularies. Tokens come from a small
            // *common* pool (given names, frequent title words) with
            // probability `common_frac`, else from the large rare pool —
            // common tokens create the candidate bloat of Table V.
            let name = (0..n_tokens).map(|slot| sample_name_token(ti, slot, t, &mut rng)).collect();
            let isolated = rng.gen_bool(t.isolated_frac.clamp(0.0, 1.0));
            let sloppy = rng.gen_bool(t.sloppy_frac.clamp(0.0, 1.0));
            objects.push(WorldObject {
                type_idx: ti,
                name,
                attrs: Vec::new(),
                edges: Vec::new(),
                isolated,
                sloppy,
            });
        }
        type_ranges.push((start, objects.len()));
    }

    // World attribute values (shared base for both KBs).
    for obj in objects.iter_mut() {
        let ti = obj.type_idx;
        let t = &spec.types[ti];
        for (ai, a) in t.attrs.iter().enumerate() {
            let v = match a.kind {
                AttrKind::Text { tokens, pool } => {
                    let text: Vec<String> = (0..tokens)
                        .map(|_| word(ti * 10_000 + ai * 971 + rng.gen_range(0..pool.max(1))))
                        .collect();
                    Value::text(text.join(" "))
                }
                // Dates are stored as text (as real KBs do): token Jaccard
                // separates different years, while numeric
                // max-percentage-difference would call 1950 ≈ 1990 (0.98).
                AttrKind::Year => Value::text(format!(
                    "{} {:02} {:02}",
                    1900 + rng.gen_range(0..120),
                    rng.gen_range(1..13),
                    rng.gen_range(1..29),
                )),
                AttrKind::Number { min, max } => Value::number(rng.gen_range(min..=max)),
                AttrKind::Name => Value::text(obj.name.join(" ")),
            };
            obj.attrs.push((ai, v));
        }
    }

    // World edges: only between non-isolated objects.
    let non_isolated_of_type: Vec<Vec<usize>> = type_ranges
        .iter()
        .map(|&(s, e)| (s..e).filter(|&oi| !objects[oi].isolated).collect())
        .collect();
    for (oi, obj) in objects.iter_mut().enumerate() {
        if obj.isolated {
            continue;
        }
        let ti = obj.type_idx;
        let t = spec.types[ti].clone();
        for (ri, r) in t.rels.iter().enumerate() {
            let pool = &non_isolated_of_type[r.target];
            if pool.is_empty() {
                continue;
            }
            let fanout = rng.gen_range(r.fanout.0..=r.fanout.1.max(r.fanout.0));
            for _ in 0..fanout {
                let target = pool[rng.gen_range(0..pool.len())];
                if target != oi {
                    obj.edges.push((ri, target));
                }
            }
        }
    }
    for o in &mut objects {
        o.edges.sort_unstable();
        o.edges.dedup();
    }

    // ---- Project into the two KBs --------------------------------------
    let mut b1 = KbBuilder::new(format!("{}-kb1", spec.name));
    let mut b2 = KbBuilder::new(format!("{}-kb2", spec.name));

    // Inclusion decisions.
    let mut included: Vec<(bool, bool)> = objects
        .iter()
        .map(|o| {
            let t = &spec.types[o.type_idx];
            (rng.gen_bool(t.kb1_keep.clamp(0.0, 1.0)), rng.gen_bool(t.kb2_keep.clamp(0.0, 1.0)))
        })
        .collect();
    // Neighbour closure: KBs are internally complete, so an included
    // entity pulls in its relationship targets (two rounds bound the
    // cascade).
    let closure = spec.closure.clamp(0.0, 1.0);
    if closure > 0.0 {
        for _ in 0..2 {
            for oi in 0..objects.len() {
                for &(_, target) in &objects[oi].edges {
                    if included[oi].0 && !included[target].0 && rng.gen_bool(closure) {
                        included[target].0 = true;
                    }
                    if included[oi].1 && !included[target].1 && rng.gen_bool(closure) {
                        included[target].1 = true;
                    }
                }
            }
        }
    }

    // Entity creation with per-KB label noise.
    let mut ids1: Vec<Option<EntityId>> = vec![None; objects.len()];
    let mut ids2: Vec<Option<EntityId>> = vec![None; objects.len()];
    for (oi, o) in objects.iter().enumerate() {
        let t = &spec.types[o.type_idx];
        for kb in 0..2 {
            let (inc, missing, noise) = if kb == 0 {
                (included[oi].0, spec.missing_label1, spec.label_noise1)
            } else {
                (included[oi].1, spec.missing_label2, spec.label_noise2)
            };
            if !inc {
                continue;
            }
            let label = if rng.gen_bool(missing.clamp(0.0, 1.0)) {
                // A single unique token: blocking can never pair it.
                format!("blank{kb}x{oi}")
            } else {
                let mut tokens = o.name.clone();
                for (slot, tok) in tokens.iter_mut().enumerate() {
                    if rng.gen_bool(noise.clamp(0.0, 1.0)) {
                        *tok = sample_name_token(o.type_idx, slot, t, &mut rng);
                    }
                }
                // Occasionally drop a token instead (second noise mode).
                if tokens.len() > 1 && rng.gen_bool(noise.clamp(0.0, 1.0) / 2.0) {
                    let drop = rng.gen_range(0..tokens.len());
                    tokens.remove(drop);
                }
                tokens.join(" ")
            };
            if kb == 0 {
                ids1[oi] = Some(b1.add_entity(label));
            } else {
                ids2[oi] = Some(b2.add_entity(label));
            }
        }
    }

    // Attribute triples.
    for (oi, o) in objects.iter().enumerate() {
        let t = &spec.types[o.type_idx];
        for &(ai, ref base) in &o.attrs {
            let a = &t.attrs[ai];
            for kb in 0..2 {
                let applicable = match a.side {
                    Side::Both => true,
                    Side::Kb1Only => kb == 0,
                    Side::Kb2Only => kb == 1,
                };
                let id = if kb == 0 { ids1[oi] } else { ids2[oi] };
                let (Some(id), true) = (id, applicable) else { continue };
                // Sloppy objects miss values more often and corrupt the
                // ones they have.
                let present = if o.sloppy { a.present * 0.55 } else { a.present }.clamp(0.0, 1.0);
                let noise =
                    if o.sloppy { (a.noise * 3.5).max(0.35) } else { a.noise }.clamp(0.0, 1.0);
                if !rng.gen_bool(present) {
                    continue;
                }
                let mut value = base.clone();
                if rng.gen_bool(noise) {
                    value = perturb_value(&value, o.type_idx, ai, &a.kind, t, &mut rng);
                }
                if kb == 0 {
                    let aid = b1.add_attr(&a.name1);
                    b1.add_attr_triple(id, aid, value);
                } else {
                    let aid = b2.add_attr(&a.name2);
                    b2.add_attr_triple(id, aid, value);
                }
            }
        }
    }

    // Relationship triples.
    for (oi, o) in objects.iter().enumerate() {
        let t = &spec.types[o.type_idx];
        for &(ri, target) in &o.edges {
            let r = &t.rels[ri];
            for kb in 0..2 {
                let applicable = match r.side {
                    Side::Both => true,
                    Side::Kb1Only => kb == 0,
                    Side::Kb2Only => kb == 1,
                };
                if !applicable || !rng.gen_bool(r.present.clamp(0.0, 1.0)) {
                    continue;
                }
                if kb == 0 {
                    if let (Some(s), Some(t_)) = (ids1[oi], ids1[target]) {
                        let rid = b1.add_rel(&r.name1);
                        b1.add_rel_triple(s, rid, t_);
                    }
                } else if let (Some(s), Some(t_)) = (ids2[oi], ids2[target]) {
                    let rid = b2.add_rel(&r.name2);
                    b2.add_rel_triple(s, rid, t_);
                }
            }
        }
    }

    // ---- Gold standards -------------------------------------------------
    let gold: HashSet<(EntityId, EntityId)> =
        (0..objects.len()).filter_map(|oi| Some((ids1[oi]?, ids2[oi]?))).collect();

    let mut gold_attr_matches: Vec<(String, String)> = Vec::new();
    let mut gold_rel_matches: Vec<(String, String)> = Vec::new();
    for t in &spec.types {
        for a in &t.attrs {
            if a.side == Side::Both {
                let entry = (a.name1.clone(), a.name2.clone());
                if !gold_attr_matches.contains(&entry) {
                    gold_attr_matches.push(entry);
                }
            }
        }
        for r in &t.rels {
            if r.side == Side::Both {
                let entry = (r.name1.clone(), r.name2.clone());
                if !gold_rel_matches.contains(&entry) {
                    gold_rel_matches.push(entry);
                }
            }
        }
    }

    GeneratedDataset {
        name: spec.name.clone(),
        kb1: b1.finish(),
        kb2: b2.finish(),
        gold,
        gold_attr_matches,
        gold_rel_matches,
    }
}

/// Perturbs a base value within its domain.
fn perturb_value(
    value: &Value,
    type_idx: usize,
    attr_idx: usize,
    kind: &AttrKind,
    t: &crate::spec::TypeSpec,
    rng: &mut StdRng,
) -> Value {
    match (value, kind) {
        (Value::Text(text), AttrKind::Text { pool, .. }) => {
            let mut tokens: Vec<String> = text.split(' ').map(str::to_owned).collect();
            let i = rng.gen_range(0..tokens.len());
            let pool = (*pool).max(1);
            tokens[i] = word(type_idx * 10_000 + attr_idx * 971 + rng.gen_range(0..pool));
            Value::text(tokens.join(" "))
        }
        (Value::Text(t), AttrKind::Year) => {
            // Perturb the day (and sometimes month), keeping the year.
            let mut parts: Vec<String> = t.split(' ').map(str::to_owned).collect();
            if parts.len() == 3 {
                parts[2] = format!("{:02}", rng.gen_range(1..29));
                if rng.gen_bool(0.3) {
                    parts[1] = format!("{:02}", rng.gen_range(1..13));
                }
            }
            Value::text(parts.join(" "))
        }
        (Value::Number(n), AttrKind::Number { .. }) => {
            Value::number(n * (1.0 + rng.gen_range(-0.2f64..0.2)))
        }
        (Value::Text(text), AttrKind::Name) => {
            let mut tokens: Vec<String> = text.split(' ').map(str::to_owned).collect();
            let i = rng.gen_range(0..tokens.len());
            tokens[i] = sample_name_token(type_idx, i, t, rng);
            Value::text(tokens.join(" "))
        }
        // Mismatched value/kind should not happen; return unchanged.
        (v, _) => v.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AttrSpec, RelSpec, TypeSpec};

    fn tiny_spec() -> DatasetSpec {
        let mut person = TypeSpec::new("person", 60);
        person.attrs.push(AttrSpec::text("name", "label", 2, 40));
        person.attrs.push(AttrSpec::year("born", "birthYear"));
        person.rels.push(RelSpec::new("livesIn", "residence", 1, (1, 1)));
        person.isolated_frac = 0.2;
        let mut city = TypeSpec::new("city", 20);
        city.attrs.push(AttrSpec::text("cityName", "cityLabel", 1, 15));
        DatasetSpec {
            name: "tiny".into(),
            seed: 11,
            types: vec![person, city],
            label_noise1: 0.1,
            label_noise2: 0.1,
            missing_label1: 0.0,
            missing_label2: 0.0,
            closure: 0.0,
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&tiny_spec());
        let b = generate(&tiny_spec());
        assert_eq!(a.kb1.num_entities(), b.kb1.num_entities());
        assert_eq!(a.gold, b.gold);
        for u in a.kb1.entities() {
            assert_eq!(a.kb1.label(u), b.kb1.label(u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&tiny_spec());
        let mut spec = tiny_spec();
        spec.seed = 12;
        let b = generate(&spec);
        let labels_a: Vec<_> = a.kb1.entities().map(|u| a.kb1.label(u).to_owned()).collect();
        let labels_b: Vec<_> = b.kb1.entities().map(|u| b.kb1.label(u).to_owned()).collect();
        assert_ne!(labels_a, labels_b);
    }

    #[test]
    fn gold_is_one_to_one() {
        let d = generate(&tiny_spec());
        let mut lefts = HashSet::new();
        let mut rights = HashSet::new();
        for &(u1, u2) in &d.gold {
            assert!(lefts.insert(u1), "duplicate left entity in gold");
            assert!(rights.insert(u2), "duplicate right entity in gold");
        }
    }

    #[test]
    fn full_keep_gives_full_gold() {
        let d = generate(&tiny_spec());
        // keep = 1.0 on both sides → every object matched.
        assert_eq!(d.num_gold(), 80);
        assert_eq!(d.kb1.num_entities(), 80);
        assert_eq!(d.kb2.num_entities(), 80);
    }

    #[test]
    fn partial_keep_shrinks_kbs_and_gold() {
        let mut spec = tiny_spec();
        spec.types[0].kb1_keep = 0.5;
        spec.types[0].kb2_keep = 0.5;
        let d = generate(&spec);
        assert!(d.kb1.num_entities() < 80);
        assert!(d.num_gold() < d.kb1.num_entities().min(d.kb2.num_entities()) + 1);
        // Every gold pair references valid entities.
        for &(u1, u2) in &d.gold {
            assert!(u1.index() < d.kb1.num_entities());
            assert!(u2.index() < d.kb2.num_entities());
        }
    }

    #[test]
    fn isolated_fraction_materialises() {
        let d = generate(&tiny_spec());
        let isolated1 = d.kb1.stats().isolated_entities;
        // 20% of 60 persons ± randomness; cities are targets so most are
        // connected. At least a few isolated entities must exist.
        assert!(isolated1 > 3, "got {isolated1}");
    }

    #[test]
    fn schema_gold_reflects_sides() {
        let mut spec = tiny_spec();
        spec.types[0].attrs.push(AttrSpec::junk("junk1", Side::Kb1Only));
        spec.types[0].rels.push(RelSpec::junk("jrel", 1, Side::Kb2Only));
        let d = generate(&spec);
        assert_eq!(d.gold_attr_matches.len(), 3, "{:?}", d.gold_attr_matches);
        assert_eq!(d.gold_rel_matches.len(), 1);
        // Junk attr exists only in kb1.
        assert!(d.kb1.attrs().any(|a| d.kb1.attr_name(a) == "junk1"));
        assert!(!d.kb2.attrs().any(|a| d.kb2.attr_name(a) == "junk1"));
    }

    #[test]
    fn missing_labels_are_unique_blanks() {
        let mut spec = tiny_spec();
        spec.missing_label1 = 1.0;
        let d = generate(&spec);
        let mut seen = HashSet::new();
        for u in d.kb1.entities() {
            let l = d.kb1.label(u);
            assert!(l.starts_with("blank0"), "got {l}");
            assert!(seen.insert(l.to_owned()), "blank labels must be unique");
        }
    }

    #[test]
    fn word_generator_is_deterministic_and_distinct() {
        assert_eq!(word(5), word(5));
        let distinct: HashSet<String> = (0..500).map(word).collect();
        assert_eq!(distinct.len(), 500);
    }

    #[test]
    fn labels_mostly_similar_across_kbs() {
        // With 10% token noise, most matched pairs keep similar labels.
        let d = generate(&tiny_spec());
        let mut exact = 0;
        for &(u1, u2) in &d.gold {
            if d.kb1.label(u1) == d.kb2.label(u2) {
                exact += 1;
            }
        }
        let frac = exact as f64 / d.num_gold() as f64;
        assert!(frac > 0.4, "exact label fraction {frac}");
        assert!(frac < 1.0, "noise must perturb something");
    }
}
