//! Synthetic dataset generators replicating the *shape* of the paper's
//! four evaluation datasets (Table II).
//!
//! The paper evaluates on IIMB, DBLP-ACM, IMDB-YAGO and DBpedia-YAGO —
//! real KBs up to 15.1 M entities. This crate substitutes seeded synthetic
//! two-KB worlds that preserve the drivers the paper's analysis attributes
//! its results to (see DESIGN.md §2):
//!
//! * entity-count ratios between the two KBs and the match fraction,
//! * schema heterogeneity (shared vs KB-specific attributes/relationships
//!   — e.g. I-Y has only 4 true attribute matches, D-Y has 19),
//! * label-similarity noise and missing labels (D-Y's 8.4% unlabeled
//!   entities cap pair completeness),
//! * relationship density, functional vs multi-valued relationships, and
//! * the isolated-entity fraction (Table VIII).
//!
//! Every generator is deterministic under its seed; `scale` multiplies
//! world sizes.

mod generate;
mod presets;
mod spec;

pub use generate::{generate, GeneratedDataset};
pub use presets::{dblp_acm, dbpedia_yago, iimb, imdb_yago, preset_by_name, tiny, PRESET_NAMES};
pub use spec::{AttrKind, AttrSpec, DatasetSpec, RelSpec, Side, TypeSpec};
