//! Declarative dataset specifications.

/// Which KBs an attribute or relationship exists in.
///
/// KB-specific schema elements are what makes attribute matching
/// non-trivial (paper Table IV: I-Y has 14 vs 36 attributes with only 4
/// true matches).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Present in both KBs (a true attribute/relationship match).
    Both,
    /// Only in KB1.
    Kb1Only,
    /// Only in KB2.
    Kb2Only,
}

/// Value domain of an attribute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttrKind {
    /// Free text drawn from a per-attribute token pool.
    Text {
        /// Tokens per value.
        tokens: usize,
        /// Token-pool size (smaller = more confusable values).
        pool: usize,
    },
    /// A date rendered as text `"YYYY MM DD"` (token Jaccard keeps
    /// years informative; numeric percentage difference would not).
    Year,
    /// The entity's own name (rdfs:label-style): the attribute value is
    /// the world object's name with independent per-KB noise, so vector
    /// components correlate gradually with label similarity.
    Name,
    /// A real number in `[min, max]`.
    Number {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
}

/// One attribute of a type.
#[derive(Clone, Debug)]
pub struct AttrSpec {
    /// Name in KB1 (used in both if `side == Both` and `name2` is empty).
    pub name1: String,
    /// Name in KB2 (heterogeneous schemas rename attributes).
    pub name2: String,
    /// Value domain.
    pub kind: AttrKind,
    /// Probability an entity carries the attribute, per KB.
    pub present: f64,
    /// Probability the value is perturbed in a given KB.
    pub noise: f64,
    /// Which KBs the attribute exists in.
    pub side: Side,
}

impl AttrSpec {
    /// A shared text attribute with default presence/noise.
    pub fn text(name1: &str, name2: &str, tokens: usize, pool: usize) -> AttrSpec {
        AttrSpec {
            name1: name1.into(),
            name2: name2.into(),
            kind: AttrKind::Text { tokens, pool },
            present: 0.9,
            noise: 0.1,
            side: Side::Both,
        }
    }

    /// A shared year attribute.
    pub fn year(name1: &str, name2: &str) -> AttrSpec {
        AttrSpec {
            name1: name1.into(),
            name2: name2.into(),
            kind: AttrKind::Year,
            present: 0.9,
            noise: 0.05,
            side: Side::Both,
        }
    }

    /// A shared name attribute carrying the entity's own label.
    pub fn name(name1: &str, name2: &str) -> AttrSpec {
        AttrSpec {
            name1: name1.into(),
            name2: name2.into(),
            kind: AttrKind::Name,
            present: 0.95,
            noise: 0.08,
            side: Side::Both,
        }
    }

    /// A shared numeric attribute.
    pub fn number(name1: &str, name2: &str, min: f64, max: f64) -> AttrSpec {
        AttrSpec {
            name1: name1.into(),
            name2: name2.into(),
            kind: AttrKind::Number { min, max },
            present: 0.8,
            noise: 0.1,
            side: Side::Both,
        }
    }

    /// A KB-specific *name-derived* attribute (never a true match, but its
    /// values correlate with the entity name — wiki page URLs, external
    /// ids). These are what the 1:1 constraint protects against
    /// (Table IV's "w/o 1:1" precision drop).
    pub fn junk_name(name: &str, side: Side) -> AttrSpec {
        AttrSpec {
            name1: name.into(),
            name2: name.into(),
            kind: AttrKind::Name,
            present: 0.6,
            noise: 0.15,
            side,
        }
    }

    /// A KB-specific junk attribute (never a true match).
    pub fn junk(name: &str, side: Side) -> AttrSpec {
        AttrSpec {
            name1: name.into(),
            name2: name.into(),
            kind: AttrKind::Text { tokens: 2, pool: 500 },
            present: 0.5,
            noise: 0.0,
            side,
        }
    }

    /// Overrides presence probability.
    pub fn with_present(mut self, p: f64) -> AttrSpec {
        self.present = p;
        self
    }

    /// Overrides noise probability.
    pub fn with_noise(mut self, p: f64) -> AttrSpec {
        self.noise = p;
        self
    }
}

/// One relationship of a type.
#[derive(Clone, Debug)]
pub struct RelSpec {
    /// Name in KB1.
    pub name1: String,
    /// Name in KB2.
    pub name2: String,
    /// Index of the target type within [`DatasetSpec::types`].
    pub target: usize,
    /// Fan-out range (inclusive): 1..=1 is a functional relationship.
    pub fanout: (usize, usize),
    /// Probability a world edge is kept in a given KB.
    pub present: f64,
    /// Which KBs the relationship exists in.
    pub side: Side,
}

impl RelSpec {
    /// A shared relationship.
    pub fn new(name1: &str, name2: &str, target: usize, fanout: (usize, usize)) -> RelSpec {
        RelSpec {
            name1: name1.into(),
            name2: name2.into(),
            target,
            fanout,
            present: 0.9,
            side: Side::Both,
        }
    }

    /// A KB-specific junk relationship.
    pub fn junk(name: &str, target: usize, side: Side) -> RelSpec {
        RelSpec {
            name1: name.into(),
            name2: name.into(),
            target,
            fanout: (1, 2),
            present: 0.5,
            side,
        }
    }

    /// Overrides presence probability.
    pub fn with_present(mut self, p: f64) -> RelSpec {
        self.present = p;
        self
    }
}

/// One entity type of the world.
#[derive(Clone, Debug)]
pub struct TypeSpec {
    /// Type name (used in generated entity names).
    pub name: String,
    /// Number of world objects (multiplied by the dataset scale).
    pub count: usize,
    /// Name-token pool size; smaller pools create confusable labels.
    pub name_pool: usize,
    /// Size of the *common* token pool (given names, stop-words of
    /// titles). Common tokens are shared by many entities and drive the
    /// candidate bloat that pruning must remove (paper Table V). 0
    /// disables.
    pub common_pool: usize,
    /// Probability a name token is drawn from the common pool.
    pub common_frac: f64,
    /// Tokens per entity name (min, max).
    pub name_tokens: (usize, usize),
    /// Attributes of this type.
    pub attrs: Vec<AttrSpec>,
    /// Outgoing relationships of this type.
    pub rels: Vec<RelSpec>,
    /// Fraction of objects that participate in no relationship at all
    /// (drives Table VIII).
    pub isolated_frac: f64,
    /// Fraction of "sloppy" objects: their attribute values are noisier
    /// and sparser across the board. Sloppy matches look globally weaker
    /// than clean non-matches — the cross-entity partial-order violations
    /// that hurt the monotonicity baselines in the paper (§VIII-A) while
    /// leaving within-block order (and Remp's relational evidence) intact.
    pub sloppy_frac: f64,
    /// Probability a world object is included in KB1 / KB2 (controls KB
    /// size ratios and the match fraction).
    pub kb1_keep: f64,
    /// See `kb1_keep`.
    pub kb2_keep: f64,
}

impl TypeSpec {
    /// A type with sensible defaults (full inclusion, no isolation).
    pub fn new(name: &str, count: usize) -> TypeSpec {
        TypeSpec {
            name: name.into(),
            count,
            name_pool: (count / 2).max(8),
            common_pool: 0,
            common_frac: 0.0,
            name_tokens: (2, 3),
            attrs: Vec::new(),
            rels: Vec::new(),
            isolated_frac: 0.0,
            sloppy_frac: 0.0,
            kb1_keep: 1.0,
            kb2_keep: 1.0,
        }
    }
}

/// A full two-KB dataset specification.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name (e.g. `"IIMB"`).
    pub name: String,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// The entity types.
    pub types: Vec<TypeSpec>,
    /// Probability each label *token* is perturbed, per KB.
    pub label_noise1: f64,
    /// See `label_noise1`.
    pub label_noise2: f64,
    /// Probability an entity has no usable label (blocking can never find
    /// it — caps pair completeness as on D-Y).
    pub missing_label1: f64,
    /// See `missing_label1`.
    pub missing_label2: f64,
    /// Neighbour-closure probability: if a KB includes an entity, each of
    /// its relationship targets is additionally included with this
    /// probability (KBs are internally complete: DBLP contains the
    /// authors of every paper it contains).
    pub closure: f64,
}

impl DatasetSpec {
    /// Multiplies all type counts by `scale` (minimum 4 objects per type),
    /// scaling name pools proportionally so label-collision *rates* stay
    /// constant across scales.
    pub fn scaled(mut self, scale: f64) -> DatasetSpec {
        for t in &mut self.types {
            t.count = ((t.count as f64 * scale).round() as usize).max(4);
            t.name_pool = ((t.name_pool as f64 * scale).round() as usize).max(8);
        }
        self
    }

    /// Total number of world objects.
    pub fn total_objects(&self) -> usize {
        self.types.iter().map(|t| t.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_multiplies_counts() {
        let mut spec = DatasetSpec {
            name: "t".into(),
            seed: 0,
            types: vec![TypeSpec::new("a", 100), TypeSpec::new("b", 50)],
            label_noise1: 0.0,
            label_noise2: 0.0,
            missing_label1: 0.0,
            missing_label2: 0.0,
            closure: 0.0,
        };
        spec = spec.scaled(0.5);
        assert_eq!(spec.types[0].count, 50);
        assert_eq!(spec.types[1].count, 25);
        assert_eq!(spec.total_objects(), 75);
    }

    #[test]
    fn scaled_has_floor() {
        let spec = DatasetSpec {
            name: "t".into(),
            seed: 0,
            types: vec![TypeSpec::new("a", 10)],
            label_noise1: 0.0,
            label_noise2: 0.0,
            missing_label1: 0.0,
            missing_label2: 0.0,
            closure: 0.0,
        }
        .scaled(0.01);
        assert_eq!(spec.types[0].count, 4);
    }

    #[test]
    fn builders_apply_overrides() {
        let a = AttrSpec::text("x", "y", 2, 100).with_present(0.3).with_noise(0.7);
        assert_eq!(a.present, 0.3);
        assert_eq!(a.noise, 0.7);
        let r = RelSpec::new("r", "s", 0, (1, 1)).with_present(0.2);
        assert_eq!(r.present, 0.2);
    }
}
