//! Simulated crowdsourcing platforms (the paper's MTurk substitute; see
//! DESIGN.md §2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Label;

/// A source of human labels for pairwise questions.
///
/// The simulation needs the hidden ground truth to decide whether each
/// worker answers correctly; real deployments would ignore it.
pub trait LabelSource {
    /// Collects the labels for one question whose hidden truth is `truth`.
    fn label(&mut self, truth: bool) -> Vec<Label>;

    /// Number of questions asked so far (the paper's `#Q`).
    fn questions_asked(&self) -> usize;

    /// Total individual labels collected (5 × questions on MTurk).
    fn labels_collected(&self) -> usize;
}

/// A mixed-quality worker pool: the "real workers" substitute.
///
/// Worker qualities are drawn uniformly from `[min_quality, max_quality]`
/// at construction (the paper's qualification filter bounds the pool from
/// below); each question is answered by `per_question` distinct workers
/// chosen at random.
#[derive(Clone, Debug)]
pub struct SimulatedCrowd {
    worker_qualities: Vec<f64>,
    per_question: usize,
    rng: StdRng,
    asked: usize,
    labels: usize,
}

impl SimulatedCrowd {
    /// Creates a pool of `num_workers` workers with qualities uniform in
    /// `[min_quality, max_quality]`, `per_question` labels per question.
    ///
    /// # Panics
    ///
    /// * if `num_workers` or `per_question` is zero,
    /// * if either quality bound lies outside `[0, 1]`,
    /// * if `min_quality > max_quality` — earlier versions silently
    ///   reordered swapped bounds, which masked caller bugs (a crowd
    ///   configured as `(0.99, 0.8)` is almost certainly a typo, not a
    ///   request for the `[0.8, 0.99]` pool).
    pub fn new(
        num_workers: usize,
        min_quality: f64,
        max_quality: f64,
        per_question: usize,
        seed: u64,
    ) -> Self {
        assert!(num_workers > 0, "a crowd needs at least one worker");
        assert!(per_question > 0, "each question needs at least one label");
        assert!(
            (0.0..=1.0).contains(&min_quality) && (0.0..=1.0).contains(&max_quality),
            "worker qualities are probabilities; got [{min_quality}, {max_quality}]"
        );
        assert!(
            min_quality <= max_quality,
            "swapped quality bounds: min_quality {min_quality} > max_quality {max_quality}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let worker_qualities =
            (0..num_workers).map(|_| rng.gen_range(min_quality..=max_quality)).collect();
        SimulatedCrowd { worker_qualities, per_question, rng, asked: 0, labels: 0 }
    }

    /// The paper-style default: 5 labels per question from a pool whose
    /// mean error rate is ≈ 0.1 (qualities in [0.8, 0.99]).
    pub fn paper_default(seed: u64) -> Self {
        SimulatedCrowd::new(100, 0.8, 0.99, 5, seed)
    }

    /// Worker qualities (for inspection/tests).
    pub fn qualities(&self) -> &[f64] {
        &self.worker_qualities
    }

    /// Summary statistics of the drawn worker pool, for inspection
    /// before launching a campaign.
    pub fn quality_stats(&self) -> QualityStats {
        let qs = &self.worker_qualities;
        let min = qs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = qs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = qs.iter().sum::<f64>() / qs.len() as f64;
        QualityStats { workers: qs.len(), min, max, mean, per_question: self.per_question }
    }
}

/// Summary of a [`SimulatedCrowd`]'s worker pool.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualityStats {
    /// Pool size.
    pub workers: usize,
    /// Lowest drawn quality.
    pub min: f64,
    /// Highest drawn quality.
    pub max: f64,
    /// Mean drawn quality (≈ 1 − expected error rate).
    pub mean: f64,
    /// Labels collected per question.
    pub per_question: usize,
}

impl LabelSource for SimulatedCrowd {
    fn label(&mut self, truth: bool) -> Vec<Label> {
        self.asked += 1;
        self.labels += self.per_question;
        (0..self.per_question)
            .map(|_| {
                let quality =
                    self.worker_qualities[self.rng.gen_range(0..self.worker_qualities.len())];
                let correct = self.rng.gen_bool(quality);
                Label::new(quality, if correct { truth } else { !truth })
            })
            .collect()
    }

    fn questions_asked(&self) -> usize {
        self.asked
    }

    fn labels_collected(&self) -> usize {
        self.labels
    }
}

/// Workers with one fixed error rate — the Fig. 3 simulated-worker
/// protocol (error ∈ {0.05, 0.15, 0.25} in the paper).
#[derive(Clone, Debug)]
pub struct FixedErrorCrowd {
    error_rate: f64,
    per_question: usize,
    rng: StdRng,
    asked: usize,
    labels: usize,
}

impl FixedErrorCrowd {
    /// Creates a crowd answering wrongly with probability `error_rate`.
    pub fn new(error_rate: f64, per_question: usize, seed: u64) -> Self {
        assert!((0.0..=0.5).contains(&error_rate), "error rate above 0.5 is adversarial");
        assert!(per_question > 0);
        FixedErrorCrowd {
            error_rate,
            per_question,
            rng: StdRng::seed_from_u64(seed),
            asked: 0,
            labels: 0,
        }
    }
}

impl LabelSource for FixedErrorCrowd {
    fn label(&mut self, truth: bool) -> Vec<Label> {
        self.asked += 1;
        self.labels += self.per_question;
        let quality = 1.0 - self.error_rate;
        (0..self.per_question)
            .map(|_| {
                let correct = self.rng.gen_bool(quality);
                Label::new(quality, if correct { truth } else { !truth })
            })
            .collect()
    }

    fn questions_asked(&self) -> usize {
        self.asked
    }

    fn labels_collected(&self) -> usize {
        self.labels
    }
}

/// Perfect labels — the "ground truths as labels" protocol of Fig. 5 and
/// Table VII. One high-confidence label per question.
#[derive(Clone, Debug, Default)]
pub struct OracleCrowd {
    asked: usize,
}

impl OracleCrowd {
    /// Creates the oracle.
    pub fn new() -> Self {
        OracleCrowd::default()
    }
}

impl LabelSource for OracleCrowd {
    fn label(&mut self, truth: bool) -> Vec<Label> {
        self.asked += 1;
        vec![Label::new(0.999, truth)]
    }

    fn questions_asked(&self) -> usize {
        self.asked
    }

    fn labels_collected(&self) -> usize {
        self.asked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{infer_truth, TruthConfig, Verdict};

    #[test]
    fn simulated_crowd_counts_questions() {
        let mut crowd = SimulatedCrowd::new(10, 0.8, 0.99, 5, 1);
        let _ = crowd.label(true);
        let _ = crowd.label(false);
        assert_eq!(crowd.questions_asked(), 2);
        assert_eq!(crowd.labels_collected(), 10);
    }

    #[test]
    fn simulated_crowd_is_mostly_correct() {
        let mut crowd = SimulatedCrowd::new(50, 0.85, 0.99, 5, 42);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..200 {
            let truth = i % 2 == 0;
            for label in crowd.label(truth) {
                total += 1;
                if label.says_match == truth {
                    correct += 1;
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy > 0.8, "accuracy {accuracy}");
    }

    #[test]
    fn fixed_error_crowd_hits_target_rate() {
        let mut crowd = FixedErrorCrowd::new(0.25, 5, 7);
        let mut wrong = 0;
        let mut total = 0;
        for i in 0..400 {
            let truth = i % 3 == 0;
            for label in crowd.label(truth) {
                total += 1;
                if label.says_match != truth {
                    wrong += 1;
                }
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!((rate - 0.25).abs() < 0.05, "error rate {rate}");
    }

    #[test]
    fn oracle_is_always_right() {
        let mut oracle = OracleCrowd::new();
        for truth in [true, false, true] {
            let labels = oracle.label(truth);
            assert_eq!(labels.len(), 1);
            assert_eq!(labels[0].says_match, truth);
            let (verdict, _) = infer_truth(0.5, &labels, &TruthConfig::default());
            assert_eq!(verdict, if truth { Verdict::Match } else { Verdict::NonMatch });
        }
        assert_eq!(oracle.questions_asked(), 3);
    }

    #[test]
    fn seeded_crowds_are_deterministic() {
        let run = |seed| {
            let mut c = SimulatedCrowd::new(20, 0.8, 0.99, 5, seed);
            (0..10).flat_map(|i| c.label(i % 2 == 0)).map(|l| l.says_match).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6), "different seeds should differ");
    }

    #[test]
    #[should_panic(expected = "adversarial")]
    fn error_rate_above_half_rejected() {
        let _ = FixedErrorCrowd::new(0.6, 5, 0);
    }

    #[test]
    #[should_panic(expected = "swapped quality bounds")]
    fn swapped_bounds_rejected() {
        let _ = SimulatedCrowd::new(10, 0.99, 0.8, 5, 0);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn out_of_range_quality_rejected() {
        let _ = SimulatedCrowd::new(10, 0.8, 1.7, 5, 0);
    }

    #[test]
    fn quality_stats_describe_the_pool() {
        let crowd = SimulatedCrowd::new(200, 0.8, 0.99, 5, 11);
        let stats = crowd.quality_stats();
        assert_eq!(stats.workers, 200);
        assert_eq!(stats.per_question, 5);
        assert!(stats.min >= 0.8 && stats.max <= 0.99, "{stats:?}");
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
        assert!((stats.mean - 0.895).abs() < 0.02, "uniform draw mean, {stats:?}");
    }

    #[test]
    fn degenerate_single_quality_pool_works() {
        let crowd = SimulatedCrowd::new(5, 0.9, 0.9, 3, 0);
        let stats = crowd.quality_stats();
        assert_eq!((stats.min, stats.max), (0.9, 0.9));
    }
}
