//! Online worker-quality estimation for live crowd deployments.
//!
//! The paper's MTurk deployment takes each worker's *qualification-test*
//! precision as their quality `λ_w` and plugs it into Eq. 17. A live
//! serving system can do better: once a question's truth has been
//! inferred, every worker who answered it either agreed or disagreed
//! with the inferred verdict, and that agreement record sharpens the
//! quality estimate question by question — the standard online
//! refinement of the worker-probability model (Zheng et al. \[41\]).
//!
//! [`WorkerQualityEstimator`] holds one [`WorkerRecord`] per registered
//! worker and produces the smoothed point estimate
//!
//! ```text
//! λ̂_w = (q0 · w + agreed) / (w + scored)
//! ```
//!
//! where `q0` is the worker's qualification quality (the MTurk analogue:
//! what the qualification test said before any real answers landed) and
//! `w` is its pseudo-count weight. With no scored answers the estimate
//! *is* the qualification; as agreement evidence accumulates it
//! dominates. Estimates are clamped away from 0 and 1 so a worker can
//! neither become an oracle nor have their labels inverted by Eq. 17's
//! log-odds (a `λ < 0.5` worker's answers count *against* what they
//! said, which is correct — persistent disagreement is signal).

use std::collections::BTreeMap;

/// Lowest estimate the smoothing will produce.
pub const MIN_ESTIMATE: f64 = 0.05;
/// Highest estimate the smoothing will produce.
pub const MAX_ESTIMATE: f64 = 0.99;

/// One worker's qualification and agreement history.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerRecord {
    /// Qualification quality `q0` — the prior point estimate.
    pub qualification: f64,
    /// Questions with an inferred match/non-match verdict this worker
    /// answered (inconsistent questions are never scored).
    pub scored: u64,
    /// How many of those answers agreed with the inferred verdict.
    pub agreed: u64,
}

impl WorkerRecord {
    /// The smoothed quality estimate given the qualification weight.
    pub fn estimate(&self, weight: f64) -> f64 {
        let raw =
            (self.qualification * weight + self.agreed as f64) / (weight + self.scored as f64);
        raw.clamp(MIN_ESTIMATE, MAX_ESTIMATE)
    }
}

/// Online per-worker quality estimation, seeded by a qualification
/// quality and refined by agreement with inferred verdicts.
///
/// Workers are keyed by name; iteration order is lexicographic (a
/// `BTreeMap`), so snapshots and status listings are deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerQualityEstimator {
    qualification: f64,
    weight: f64,
    workers: BTreeMap<String, WorkerRecord>,
}

impl WorkerQualityEstimator {
    /// Creates an estimator whose workers start at `qualification`,
    /// weighted as `weight` pseudo-answers of agreement evidence.
    ///
    /// # Panics
    ///
    /// If `qualification` lies outside `(0, 1)` or `weight` is not a
    /// positive finite number.
    pub fn new(qualification: f64, weight: f64) -> WorkerQualityEstimator {
        assert!(
            qualification > 0.0 && qualification < 1.0,
            "qualification quality must lie in (0, 1); got {qualification}"
        );
        assert!(
            weight.is_finite() && weight > 0.0,
            "qualification weight must be positive and finite; got {weight}"
        );
        WorkerQualityEstimator { qualification, weight, workers: BTreeMap::new() }
    }

    /// The seed quality new workers start with.
    pub fn qualification(&self) -> f64 {
        self.qualification
    }

    /// Ensures `worker` has a record; returns `true` if it was created.
    pub fn register(&mut self, worker: &str) -> bool {
        if self.workers.contains_key(worker) {
            return false;
        }
        self.workers.insert(
            worker.to_owned(),
            WorkerRecord { qualification: self.qualification, scored: 0, agreed: 0 },
        );
        true
    }

    /// Whether `worker` has a record.
    pub fn is_registered(&self, worker: &str) -> bool {
        self.workers.contains_key(worker)
    }

    /// The current quality estimate for `worker`. Unregistered workers
    /// estimate at the qualification quality (what registering them
    /// would produce).
    pub fn estimate(&self, worker: &str) -> f64 {
        match self.workers.get(worker) {
            Some(record) => record.estimate(self.weight),
            None => self.qualification.clamp(MIN_ESTIMATE, MAX_ESTIMATE),
        }
    }

    /// Records that `worker` agreed (or not) with an inferred verdict,
    /// registering them first if needed.
    pub fn score(&mut self, worker: &str, agreed: bool) {
        self.register(worker);
        let record = self.workers.get_mut(worker).expect("registered above");
        record.scored += 1;
        if agreed {
            record.agreed += 1;
        }
    }

    /// Number of registered workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether no worker has registered yet.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The records, in worker-name order (for status listings and
    /// checkpoints).
    pub fn records(&self) -> impl Iterator<Item = (&str, &WorkerRecord)> {
        self.workers.iter().map(|(name, record)| (name.as_str(), record))
    }

    /// Restores a record captured by [`records`](Self::records) — the
    /// checkpoint-resume path. Replaces any existing record.
    pub fn restore(&mut self, worker: &str, record: WorkerRecord) {
        self.workers.insert(worker.to_owned(), record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_workers_estimate_at_qualification() {
        let mut est = WorkerQualityEstimator::new(0.85, 5.0);
        assert!((est.estimate("alice") - 0.85).abs() < 1e-12, "unregistered");
        assert!(est.register("alice"));
        assert!(!est.register("alice"), "double registration is a no-op");
        assert!((est.estimate("alice") - 0.85).abs() < 1e-12, "registered, unscored");
        assert!(est.is_registered("alice"));
        assert_eq!(est.len(), 1);
    }

    #[test]
    fn agreement_raises_and_disagreement_lowers() {
        let mut est = WorkerQualityEstimator::new(0.85, 5.0);
        let q0 = est.estimate("w");
        est.score("w", true);
        let up = est.estimate("w");
        assert!(up > q0, "{up} should exceed {q0}");
        let mut est = WorkerQualityEstimator::new(0.85, 5.0);
        est.score("w", false);
        let down = est.estimate("w");
        assert!(down < q0, "{down} should undercut {q0}");
    }

    #[test]
    fn evidence_dominates_the_qualification() {
        let mut est = WorkerQualityEstimator::new(0.5, 2.0);
        for _ in 0..200 {
            est.score("sharp", true);
        }
        assert!(est.estimate("sharp") > 0.97, "{}", est.estimate("sharp"));
        for _ in 0..200 {
            est.score("dull", false);
        }
        assert!(est.estimate("dull") < 0.05 + 1e-12, "{}", est.estimate("dull"));
    }

    #[test]
    fn estimates_stay_clamped() {
        let mut est = WorkerQualityEstimator::new(0.9, 1.0);
        for _ in 0..10_000 {
            est.score("w", true);
        }
        assert!(est.estimate("w") <= MAX_ESTIMATE);
        for _ in 0..100_000 {
            est.score("w", false);
        }
        assert!(est.estimate("w") >= MIN_ESTIMATE);
    }

    #[test]
    fn smoothing_formula_is_exact() {
        let mut est = WorkerQualityEstimator::new(0.8, 4.0);
        est.score("w", true);
        est.score("w", true);
        est.score("w", false);
        // (0.8 * 4 + 2) / (4 + 3) = 5.2 / 7
        assert!((est.estimate("w") - 5.2 / 7.0).abs() < 1e-12, "{}", est.estimate("w"));
    }

    #[test]
    fn records_round_trip_through_restore() {
        let mut est = WorkerQualityEstimator::new(0.85, 5.0);
        est.score("b", true);
        est.score("a", false);
        est.score("b", true);
        let saved: Vec<(String, WorkerRecord)> =
            est.records().map(|(n, r)| (n.to_owned(), r.clone())).collect();
        assert_eq!(saved.len(), 2);
        assert_eq!(saved[0].0, "a", "records iterate in name order");

        let mut fresh = WorkerQualityEstimator::new(0.85, 5.0);
        for (name, record) in &saved {
            fresh.restore(name, record.clone());
        }
        assert_eq!(fresh, est);
    }

    #[test]
    #[should_panic(expected = "qualification quality")]
    fn rejects_degenerate_qualification() {
        let _ = WorkerQualityEstimator::new(1.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn rejects_non_positive_weight() {
        let _ = WorkerQualityEstimator::new(0.8, 0.0);
    }
}
