//! Error-tolerant truth inference (paper §VII-A, Eq. 17).

/// One worker's answer to a pairwise question.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Label {
    /// The worker's quality `λ_w ∈ (0, 1]` — probability of answering
    /// correctly (the paper reuses MTurk qualification-test precision).
    pub worker_quality: f64,
    /// `true` if the worker labeled the pair a match.
    pub says_match: bool,
}

impl Label {
    /// Convenience constructor.
    pub fn new(worker_quality: f64, says_match: bool) -> Self {
        Label { worker_quality, says_match }
    }
}

/// Posterior probability that the question is a match given the labels
/// (Eq. 17), computed in log-odds space for numerical robustness.
///
/// Workers with `λ = 0.5` contribute nothing; `λ` is clamped away from 0
/// and 1 to keep odds finite.
pub fn posterior_match_probability(prior: f64, labels: &[Label]) -> f64 {
    let prior = prior.clamp(1e-9, 1.0 - 1e-9);
    let mut log_odds = (prior / (1.0 - prior)).ln();
    for label in labels {
        let lambda = label.worker_quality.clamp(1e-6, 1.0 - 1e-6);
        let delta = (lambda / (1.0 - lambda)).ln();
        if label.says_match {
            log_odds += delta;
        } else {
            log_odds -= delta;
        }
    }
    1.0 / (1.0 + (-log_odds).exp())
}

/// Thresholds separating matches, non-matches and inconsistent questions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TruthConfig {
    /// Posterior at or above this is a match (paper: 0.8).
    pub match_threshold: f64,
    /// Posterior at or below this is a non-match (paper: 0.2).
    pub non_match_threshold: f64,
}

impl Default for TruthConfig {
    fn default() -> Self {
        TruthConfig { match_threshold: 0.8, non_match_threshold: 0.2 }
    }
}

/// Outcome of truth inference for one question.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Consistently labeled a match.
    Match,
    /// Consistently labeled a non-match.
    NonMatch,
    /// Labels disagree: the question is *hard*. The pipeline lowers its
    /// prior to the posterior so it is less likely to be asked again.
    Inconsistent,
}

/// Runs Eq. 17 and thresholds the posterior (§VII-A).
pub fn infer_truth(prior: f64, labels: &[Label], config: &TruthConfig) -> (Verdict, f64) {
    let posterior = posterior_match_probability(prior, labels);
    let verdict = if posterior >= config.match_threshold {
        Verdict::Match
    } else if posterior <= config.non_match_threshold {
        Verdict::NonMatch
    } else {
        Verdict::Inconsistent
    };
    (verdict, posterior)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn labels(quality: f64, answers: &[bool]) -> Vec<Label> {
        answers.iter().map(|&a| Label::new(quality, a)).collect()
    }

    #[test]
    fn unanimous_matches_confirm() {
        let p = posterior_match_probability(0.5, &labels(0.9, &[true; 5]));
        assert!(p > 0.99, "got {p}");
    }

    #[test]
    fn unanimous_non_matches_reject() {
        let p = posterior_match_probability(0.5, &labels(0.9, &[false; 5]));
        assert!(p < 0.01, "got {p}");
    }

    #[test]
    fn split_vote_is_inconsistent() {
        let (verdict, p) =
            infer_truth(0.5, &labels(0.9, &[true, true, false, false]), &TruthConfig::default());
        assert_eq!(verdict, Verdict::Inconsistent);
        assert!((p - 0.5).abs() < 1e-9, "balanced labels cancel, got {p}");
    }

    #[test]
    fn majority_with_good_workers_wins() {
        let (verdict, _) = infer_truth(
            0.5,
            &labels(0.9, &[true, true, true, false, false]),
            &TruthConfig::default(),
        );
        assert_eq!(verdict, Verdict::Match);
    }

    #[test]
    fn prior_shifts_posterior() {
        let lbls = labels(0.7, &[true]);
        let low = posterior_match_probability(0.1, &lbls);
        let high = posterior_match_probability(0.9, &lbls);
        assert!(low < high);
    }

    #[test]
    fn neutral_worker_is_ignored() {
        let p = posterior_match_probability(0.3, &labels(0.5, &[true, true, true]));
        assert!((p - 0.3).abs() < 1e-9);
    }

    #[test]
    fn no_labels_returns_prior() {
        let p = posterior_match_probability(0.42, &[]);
        assert!((p - 0.42).abs() < 1e-9);
    }

    #[test]
    fn eq17_closed_form_agrees() {
        // Direct (non-log) evaluation of Eq. 17 for a mixed label set.
        let prior: f64 = 0.6;
        let lbls = vec![Label::new(0.8, true), Label::new(0.7, false), Label::new(0.9, true)];
        let pr_w_match: f64 = lbls
            .iter()
            .map(|l| if l.says_match { l.worker_quality } else { 1.0 - l.worker_quality })
            .product();
        let pr_w_non: f64 = lbls
            .iter()
            .map(|l| if l.says_match { 1.0 - l.worker_quality } else { l.worker_quality })
            .product();
        let expected = prior * pr_w_match / (prior * pr_w_match + (1.0 - prior) * pr_w_non);
        let got = posterior_match_probability(prior, &lbls);
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    proptest! {
        /// Posterior is a probability and adding a confirming label from a
        /// better-than-chance worker never lowers it.
        #[test]
        fn posterior_monotone_in_confirming_labels(
            prior in 0.01f64..0.99,
            qualities in proptest::collection::vec(0.5f64..0.99, 0..6),
            extra_quality in 0.51f64..0.99
        ) {
            let lbls: Vec<Label> = qualities.iter().map(|&q| Label::new(q, true)).collect();
            let p0 = posterior_match_probability(prior, &lbls);
            prop_assert!((0.0..=1.0).contains(&p0));
            let mut more = lbls.clone();
            more.push(Label::new(extra_quality, true));
            let p1 = posterior_match_probability(prior, &more);
            prop_assert!(p1 >= p0 - 1e-12);
        }

        /// Symmetry: flipping all answers and the prior mirrors the posterior.
        #[test]
        fn posterior_symmetry(
            prior in 0.01f64..0.99,
            entries in proptest::collection::vec((0.51f64..0.99, proptest::bool::ANY), 0..6)
        ) {
            let lbls: Vec<Label> = entries.iter().map(|&(q, a)| Label::new(q, a)).collect();
            let flipped: Vec<Label> = entries.iter().map(|&(q, a)| Label::new(q, !a)).collect();
            let p = posterior_match_probability(prior, &lbls);
            let q = posterior_match_probability(1.0 - prior, &flipped);
            prop_assert!((p - (1.0 - q)).abs() < 1e-9);
        }

        /// Verdicts respect the thresholds.
        #[test]
        fn verdict_matches_thresholds(
            prior in 0.01f64..0.99,
            entries in proptest::collection::vec((0.51f64..0.99, proptest::bool::ANY), 0..8)
        ) {
            let lbls: Vec<Label> = entries.iter().map(|&(q, a)| Label::new(q, a)).collect();
            let cfg = TruthConfig::default();
            let (verdict, p) = infer_truth(prior, &lbls, &cfg);
            match verdict {
                Verdict::Match => prop_assert!(p >= cfg.match_threshold),
                Verdict::NonMatch => prop_assert!(p <= cfg.non_match_threshold),
                Verdict::Inconsistent => {
                    prop_assert!(p > cfg.non_match_threshold && p < cfg.match_threshold)
                }
            }
        }
    }
}
