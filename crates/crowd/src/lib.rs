//! Crowdsourcing substrate (paper §VII-A).
//!
//! The paper publishes pairwise questions on Amazon MTurk, assigns each to
//! five workers, and infers truths with the worker-probability model
//! (Zheng et al. \[41\]): each worker `w` answers correctly with probability
//! `λ_w` (their qualification-test precision). This crate simulates that
//! pipeline:
//!
//! * [`Label`] — one worker's answer together with their quality.
//! * [`posterior_match_probability`] — the Eq. 17 posterior.
//! * [`infer_truth`] / [`TruthConfig`] — thresholding posteriors into
//!   match / non-match / inconsistent verdicts (0.8 / 0.2 in the paper).
//! * [`LabelSource`] — the question-answering interface, with three
//!   implementations: [`SimulatedCrowd`] (mixed-quality worker pool, the
//!   "real workers" substitute), [`FixedErrorCrowd`] (uniform error rate,
//!   the Fig. 3 protocol) and [`OracleCrowd`] (ground-truth labels, the
//!   Fig. 5 / Table VII protocol).

//!
//! Live deployments replace the oracle qualities baked into
//! [`SimulatedCrowd`] with [`WorkerQualityEstimator`] — online per-worker
//! quality refinement from agreement with inferred verdicts, seeded by a
//! qualification quality (the `remp-serve` campaign server is the
//! consumer).

mod platform;
mod quality;
mod truth;

pub use platform::{FixedErrorCrowd, LabelSource, OracleCrowd, QualityStats, SimulatedCrowd};
pub use quality::{WorkerQualityEstimator, WorkerRecord, MAX_ESTIMATE, MIN_ESTIMATE};
pub use truth::{infer_truth, posterior_match_probability, Label, TruthConfig, Verdict};
