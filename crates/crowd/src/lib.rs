//! Crowdsourcing substrate (paper §VII-A).
//!
//! The paper publishes pairwise questions on Amazon MTurk, assigns each to
//! five workers, and infers truths with the worker-probability model
//! (Zheng et al. \[41\]): each worker `w` answers correctly with probability
//! `λ_w` (their qualification-test precision). This crate simulates that
//! pipeline:
//!
//! * [`Label`] — one worker's answer together with their quality.
//! * [`posterior_match_probability`] — the Eq. 17 posterior.
//! * [`infer_truth`] / [`TruthConfig`] — thresholding posteriors into
//!   match / non-match / inconsistent verdicts (0.8 / 0.2 in the paper).
//! * [`LabelSource`] — the question-answering interface, with three
//!   implementations: [`SimulatedCrowd`] (mixed-quality worker pool, the
//!   "real workers" substitute), [`FixedErrorCrowd`] (uniform error rate,
//!   the Fig. 3 protocol) and [`OracleCrowd`] (ground-truth labels, the
//!   Fig. 5 / Table VII protocol).

mod platform;
mod truth;

pub use platform::{FixedErrorCrowd, LabelSource, OracleCrowd, QualityStats, SimulatedCrowd};
pub use truth::{infer_truth, posterior_match_probability, Label, TruthConfig, Verdict};
