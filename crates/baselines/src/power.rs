//! POWER-style partial-order crowdsourced ER (Chai et al., VLDB J.'18).
//!
//! POWER groups candidate pairs with identical similarity vectors,
//! organises the groups in the natural partial order, and asks the crowd
//! about boundary groups: a "match" answer resolves every dominating
//! group as matches, a "non-match" answer resolves every dominated group
//! as non-matches (monotonicity). Question order greedily maximises the
//! guaranteed resolution count (`min(#⪰, #⪯)` — a chain binary search
//! generalised to the DAG).

use remp_crowd::{infer_truth, LabelSource, TruthConfig, Verdict};
use remp_ergraph::{Candidates, PairId};
use remp_simil::SimVec;

use crate::BaselineOutcome;

/// POWER parameters.
#[derive(Clone, Copy, Debug)]
pub struct PowerConfig {
    /// Hard budget on questions (safety net; POWER's own stop rule is
    /// exhaustion of unresolved groups).
    pub max_questions: usize,
    /// Truth-inference thresholds.
    pub truth: TruthConfig,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig { max_questions: 5_000, truth: TruthConfig::default() }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum GroupState {
    Open,
    Match,
    NonMatch,
    /// Inconsistent crowd answer: group is spent but not propagated.
    Unknown,
}

/// Runs POWER over pairs with the given similarity vectors.
pub fn power(
    candidates: &Candidates,
    sim_vectors: &[SimVec],
    truth: &dyn Fn(remp_kb::EntityId, remp_kb::EntityId) -> bool,
    crowd: &mut dyn LabelSource,
    config: &PowerConfig,
) -> BaselineOutcome {
    power_on_subset(
        candidates,
        sim_vectors,
        &candidates.ids().collect::<Vec<_>>(),
        truth,
        crowd,
        config,
    )
}

/// POWER restricted to a subset of pairs (HIKE reuses this per partition).
pub(crate) fn power_on_subset(
    candidates: &Candidates,
    sim_vectors: &[SimVec],
    subset: &[PairId],
    truth: &dyn Fn(remp_kb::EntityId, remp_kb::EntityId) -> bool,
    crowd: &mut dyn LabelSource,
    config: &PowerConfig,
) -> BaselineOutcome {
    // ---- Group pairs by identical similarity vectors. ----
    let mut groups: Vec<(SimVec, Vec<PairId>)> = Vec::new();
    {
        let mut sorted: Vec<PairId> = subset.to_vec();
        sorted.sort_by(|&a, &b| {
            sim_vectors[a.index()].lex_cmp(&sim_vectors[b.index()]).then_with(|| a.cmp(&b))
        });
        for p in sorted {
            match groups.last_mut() {
                Some((v, members)) if *v == sim_vectors[p.index()] => {
                    members.push(p);
                }
                _ => groups.push((sim_vectors[p.index()].clone(), vec![p])),
            }
        }
    }
    let m = groups.len();

    // Dominance lists between groups (O(m²·d); groups ≪ pairs).
    let mut above: Vec<Vec<usize>> = vec![Vec::new(); m]; // strictly dominating
    let mut below: Vec<Vec<usize>> = vec![Vec::new(); m];
    for i in 0..m {
        for j in 0..m {
            if i != j && groups[i].0.strictly_dominates(&groups[j].0) {
                above[j].push(i);
                below[i].push(j);
            }
        }
    }

    let mut state = vec![GroupState::Open; m];
    let mut questions = 0usize;

    // Mean prior of a group's members ≈ its match probability.
    let group_prior: Vec<f64> = groups
        .iter()
        .map(|(_, members)| {
            members.iter().map(|&p| candidates.prior(p)).sum::<f64>() / members.len() as f64
        })
        .collect();

    loop {
        if questions >= config.max_questions {
            break;
        }
        // Frontier descent: ask the open group with the highest match
        // probability first. Matches at the top cascade through their
        // (small) up-cones; the first non-matches below the frontier
        // cascade down through everything weaker. Multi-dimensional
        // vectors are largely incomparable, so cones stay local and many
        // questions are needed — the published framework's behaviour,
        // without the flood risk of a global binary search.
        let best = (0..m)
            .filter(|&i| state[i] == GroupState::Open)
            .map(|i| (group_prior[i], groups[i].1.len(), i))
            .max_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.cmp(&b.1))
                    .then_with(|| b.2.cmp(&a.2))
            });
        let Some((_, _, g)) = best else { break };

        // Ask the crowd about one representative pair of the group.
        let rep = groups[g].1[0];
        let (u1, u2) = candidates.pair(rep);
        let labels = crowd.label(truth(u1, u2));
        questions += 1;
        let (verdict, _) = infer_truth(candidates.prior(rep), &labels, &config.truth);
        match verdict {
            Verdict::Match => {
                state[g] = GroupState::Match;
                for &j in &above[g] {
                    if state[j] == GroupState::Open {
                        state[j] = GroupState::Match;
                    }
                }
            }
            Verdict::NonMatch => {
                state[g] = GroupState::NonMatch;
                for &j in &below[g] {
                    if state[j] == GroupState::Open {
                        state[j] = GroupState::NonMatch;
                    }
                }
            }
            Verdict::Inconsistent => {
                state[g] = GroupState::Unknown;
            }
        }
    }

    let mut matches = Vec::new();
    for (i, (_, members)) in groups.iter().enumerate() {
        if state[i] == GroupState::Match {
            matches.extend(members.iter().map(|&p| candidates.pair(p)));
        }
    }
    matches.sort_unstable();
    BaselineOutcome { matches, questions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_core::{evaluate_matches, prepare, RempConfig};
    use remp_crowd::OracleCrowd;
    use remp_datasets::{generate, iimb};

    fn setup() -> (remp_datasets::GeneratedDataset, remp_core::PreparedEr) {
        let d = generate(&iimb(0.2));
        let prep = prepare(&d.kb1, &d.kb2, &RempConfig::default());
        (d, prep)
    }

    #[test]
    fn power_with_oracle_is_accurate() {
        let (d, prep) = setup();
        let mut crowd = OracleCrowd::new();
        let out = power(
            &prep.candidates,
            &prep.sim_vectors,
            &|u1, u2| d.is_match(u1, u2),
            &mut crowd,
            &PowerConfig::default(),
        );
        let eval = evaluate_matches(out.matches.iter().copied(), &d.gold);
        assert!(eval.precision > 0.6, "precision {}", eval.precision);
        assert!(out.questions > 0);
        assert_eq!(out.questions, crowd.questions_asked());
    }

    #[test]
    fn monotone_propagation_saves_questions() {
        let (d, prep) = setup();
        let mut crowd = OracleCrowd::new();
        let out = power(
            &prep.candidates,
            &prep.sim_vectors,
            &|u1, u2| d.is_match(u1, u2),
            &mut crowd,
            &PowerConfig::default(),
        );
        // Questions are per group and monotone inference resolves several
        // groups per answer, so #Q must be below the pair count.
        assert!(
            out.questions < prep.candidates.len(),
            "{} questions for {} pairs",
            out.questions,
            prep.candidates.len()
        );
    }

    #[test]
    fn budget_respected() {
        let (d, prep) = setup();
        let mut crowd = OracleCrowd::new();
        let config = PowerConfig { max_questions: 3, ..Default::default() };
        let out = power(
            &prep.candidates,
            &prep.sim_vectors,
            &|u1, u2| d.is_match(u1, u2),
            &mut crowd,
            &config,
        );
        assert!(out.questions <= 3);
    }
}
