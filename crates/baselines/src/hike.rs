//! HIKE-style hybrid human-machine ER (Zhuang et al., CIKM'17).
//!
//! HIKE partitions entities into clusters with similar attributes and
//! relationships (hierarchical agglomerative clustering in the paper) and
//! runs monotonicity-based inference *within* each partition — cross-type
//! inference is impossible, which is exactly the limitation Remp's
//! propagation removes. We partition candidate pairs by their attribute
//! signature (the set of attribute matches both entities carry), a
//! faithful stand-in for HIKE's attribute-driven clustering at our scale
//! (documented in DESIGN.md §4), then apply the POWER-style partial-order
//! engine per partition.

use std::collections::HashMap;

use remp_crowd::{LabelSource, TruthConfig};
use remp_ergraph::{AttrAlignment, Candidates, PairId};
use remp_kb::Kb;
use remp_simil::SimVec;

use crate::power::power_on_subset;
use crate::{BaselineOutcome, PowerConfig};

/// HIKE parameters.
#[derive(Clone, Copy, Debug)]
pub struct HikeConfig {
    /// Hard budget on total questions across partitions.
    pub max_questions: usize,
    /// Truth-inference thresholds.
    pub truth: TruthConfig,
}

impl Default for HikeConfig {
    fn default() -> Self {
        HikeConfig { max_questions: 5_000, truth: TruthConfig::default() }
    }
}

/// Runs HIKE: attribute-signature partitioning + per-partition
/// partial-order inference.
#[allow(clippy::too_many_arguments)]
pub fn hike(
    kb1: &Kb,
    kb2: &Kb,
    candidates: &Candidates,
    sim_vectors: &[SimVec],
    alignment: &AttrAlignment,
    truth: &dyn Fn(remp_kb::EntityId, remp_kb::EntityId) -> bool,
    crowd: &mut dyn LabelSource,
    config: &HikeConfig,
) -> BaselineOutcome {
    // Partition pairs by attribute signature.
    let mut partitions: HashMap<Vec<u16>, Vec<PairId>> = HashMap::new();
    for p in candidates.ids() {
        let (u1, u2) = candidates.pair(p);
        let sig: Vec<u16> = alignment
            .pairs
            .iter()
            .enumerate()
            .filter(|(_, &(a1, a2, _))| kb1.has_attr(u1, a1) && kb2.has_attr(u2, a2))
            .map(|(i, _)| i as u16)
            .collect();
        partitions.entry(sig).or_default().push(p);
    }

    // Deterministic partition order: biggest first (HIKE prioritises large
    // clusters), ties by signature.
    let mut ordered: Vec<(Vec<u16>, Vec<PairId>)> = partitions.into_iter().collect();
    ordered.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.0.cmp(&b.0)));

    let mut matches = Vec::new();
    let mut questions = 0usize;
    for (_, members) in ordered {
        if questions >= config.max_questions {
            break;
        }
        let sub_config =
            PowerConfig { max_questions: config.max_questions - questions, truth: config.truth };
        let out = power_on_subset(candidates, sim_vectors, &members, truth, crowd, &sub_config);
        questions += out.questions;
        matches.extend(out.matches);
    }
    matches.sort_unstable();
    matches.dedup();
    BaselineOutcome { matches, questions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_core::{evaluate_matches, prepare, RempConfig};
    use remp_crowd::OracleCrowd;
    use remp_datasets::{generate, iimb, imdb_yago};

    #[test]
    fn hike_with_oracle_is_accurate() {
        let d = generate(&iimb(0.2));
        let prep = prepare(&d.kb1, &d.kb2, &RempConfig::default());
        let mut crowd = OracleCrowd::new();
        let out = hike(
            &d.kb1,
            &d.kb2,
            &prep.candidates,
            &prep.sim_vectors,
            &prep.alignment,
            &|u1, u2| d.is_match(u1, u2),
            &mut crowd,
            &HikeConfig::default(),
        );
        let eval = evaluate_matches(out.matches.iter().copied(), &d.gold);
        assert!(eval.precision > 0.6, "precision {}", eval.precision);
        assert!(out.questions > 0);
    }

    #[test]
    fn heterogeneous_schemas_need_more_questions() {
        // On I-Y (many types, weak attributes) HIKE must interrogate many
        // partitions — one question at the very least per partition with
        // any pairs.
        let d = generate(&imdb_yago(0.1));
        let prep = prepare(&d.kb1, &d.kb2, &RempConfig::default());
        let mut crowd = OracleCrowd::new();
        let out = hike(
            &d.kb1,
            &d.kb2,
            &prep.candidates,
            &prep.sim_vectors,
            &prep.alignment,
            &|u1, u2| d.is_match(u1, u2),
            &mut crowd,
            &HikeConfig::default(),
        );
        assert!(out.questions >= 2, "expected multiple partitions, got {}", out.questions);
    }

    #[test]
    fn budget_is_global() {
        let d = generate(&iimb(0.2));
        let prep = prepare(&d.kb1, &d.kb2, &RempConfig::default());
        let mut crowd = OracleCrowd::new();
        let config = HikeConfig { max_questions: 4, ..Default::default() };
        let out = hike(
            &d.kb1,
            &d.kb2,
            &prep.candidates,
            &prep.sim_vectors,
            &prep.alignment,
            &|u1, u2| d.is_match(u1, u2),
            &mut crowd,
            &config,
        );
        assert!(out.questions <= 4);
    }
}
