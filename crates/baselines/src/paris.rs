//! PARIS-style probabilistic alignment (Suchanek et al., VLDB'12).
//!
//! PARIS iterates fixpoint equations that raise `Pr[x ≡ x']` when the
//! pair's neighbours under (approximately) functional relationship pairs
//! are themselves likely matches. This reimplementation keeps the
//! message-passing core:
//!
//! * relationship-pair *alignment scores* are re-estimated every round
//!   from the current match probabilities (PARIS's subsumption scores);
//! * per-relationship *functionality* discounts multi-valued evidence;
//! * the per-pair update aggregates independent neighbour evidence with a
//!   noisy-or on top of the literal prior;
//! * the final answer keeps, per entity, its maximum-probability partner
//!   above a threshold (PARIS's final assignment extraction).

use std::collections::HashMap;

use remp_ergraph::{Candidates, Direction, ErGraph, PairId};
use remp_kb::Kb;

use crate::BaselineOutcome;

/// PARIS parameters.
#[derive(Clone, Copy, Debug)]
pub struct ParisConfig {
    /// Fixpoint iterations.
    pub iterations: usize,
    /// Probability threshold for emitting a match.
    pub threshold: f64,
}

impl Default for ParisConfig {
    fn default() -> Self {
        ParisConfig { iterations: 8, threshold: 0.5 }
    }
}

/// Functionality of a relationship viewed through `dir`:
/// `#subjects / #triples` (1.0 = functional).
fn functionality(kb: &Kb, r: remp_kb::RelId, dir: Direction) -> f64 {
    let mut subjects = 0usize;
    let mut triples = 0usize;
    for u in kb.entities() {
        let vals = match dir {
            Direction::Forward => kb.rel_values(u, r),
            Direction::Reverse => kb.rel_subjects(u, r),
        };
        if !vals.is_empty() {
            subjects += 1;
            triples += vals.len();
        }
    }
    if triples == 0 {
        0.0
    } else {
        subjects as f64 / triples as f64
    }
}

/// Runs PARIS over the retained candidates. `seeds` start at probability
/// 1.0 (the Table VI protocol); pass `&[]` for the unsupervised variant.
pub fn paris(
    kb1: &Kb,
    kb2: &Kb,
    candidates: &Candidates,
    graph: &ErGraph,
    seeds: &[PairId],
    config: &ParisConfig,
) -> BaselineOutcome {
    let n = candidates.len();
    let mut prob: Vec<f64> = candidates.ids().map(|p| candidates.prior(p)).collect();
    for &s in seeds {
        prob[s.index()] = 1.0;
    }

    // Per-label functionality product (evidence strength of one edge).
    let label_fun: HashMap<_, f64> = graph
        .labels()
        .map(|(id, l)| {
            let f1 = functionality(kb1, l.r1, l.dir);
            let f2 = functionality(kb2, l.r2, l.dir);
            (id, (f1 * f2).sqrt())
        })
        .collect();

    for _ in 0..config.iterations {
        // Re-estimate relationship-pair alignment scores from the current
        // probabilities: how often do high-probability pairs see
        // high-probability neighbours through this label?
        let mut align_num: HashMap<_, f64> = HashMap::new();
        let mut align_den: HashMap<_, f64> = HashMap::new();
        for v in candidates.ids() {
            for &(label, w) in graph.edges_from(v) {
                *align_num.entry(label).or_default() += prob[v.index()] * prob[w.index()];
                *align_den.entry(label).or_default() += prob[v.index()];
            }
        }
        let align: HashMap<_, f64> = align_num
            .iter()
            .map(|(&l, &num)| {
                let den = align_den[&l].max(1e-9);
                (l, (num / den).clamp(0.02, 0.98))
            })
            .collect();

        // Noisy-or update on top of the literal prior.
        let mut next = vec![0.0f64; n];
        for v in candidates.ids() {
            let prior = candidates.prior(v);
            let mut not_matched = 1.0 - prior;
            for &(label, w) in graph.edges_from(v) {
                let evidence = align.get(&label).copied().unwrap_or(0.02)
                    * label_fun.get(&label).copied().unwrap_or(0.0)
                    * prob[w.index()];
                not_matched *= 1.0 - evidence;
            }
            next[v.index()] = 1.0 - not_matched;
        }
        for &s in seeds {
            next[s.index()] = 1.0;
        }
        prob = next;
    }

    // Final assignment: per entity keep the best partner above threshold.
    let mut best1: HashMap<remp_kb::EntityId, (f64, PairId)> = HashMap::new();
    let mut best2: HashMap<remp_kb::EntityId, (f64, PairId)> = HashMap::new();
    for p in candidates.ids() {
        let (u1, u2) = candidates.pair(p);
        let score = prob[p.index()];
        if score < config.threshold {
            continue;
        }
        if best1.get(&u1).is_none_or(|&(s, _)| score > s) {
            best1.insert(u1, (score, p));
        }
        if best2.get(&u2).is_none_or(|&(s, _)| score > s) {
            best2.insert(u2, (score, p));
        }
    }
    let mut matches: Vec<(remp_kb::EntityId, remp_kb::EntityId)> = candidates
        .ids()
        .filter(|&p| {
            let (u1, u2) = candidates.pair(p);
            best1.get(&u1).is_some_and(|&(_, bp)| bp == p)
                && best2.get(&u2).is_some_and(|&(_, bp)| bp == p)
        })
        .map(|p| candidates.pair(p))
        .collect();
    matches.sort_unstable();

    BaselineOutcome { matches, questions: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_core::{prepare, RempConfig};
    use remp_datasets::{generate, iimb};

    fn setup() -> (remp_datasets::GeneratedDataset, remp_core::PreparedEr) {
        let d = generate(&iimb(0.2));
        let prep = prepare(&d.kb1, &d.kb2, &RempConfig::default());
        (d, prep)
    }

    #[test]
    fn paris_finds_matches_unseeded() {
        let (d, prep) = setup();
        let out =
            paris(&d.kb1, &d.kb2, &prep.candidates, &prep.graph, &[], &ParisConfig::default());
        assert!(!out.matches.is_empty());
        assert_eq!(out.questions, 0);
        let eval = remp_core::evaluate_matches(out.matches.iter().copied(), &d.gold);
        assert!(eval.precision > 0.5, "precision {}", eval.precision);
    }

    #[test]
    fn seeds_improve_f1() {
        let (d, prep) = setup();
        let unseeded =
            paris(&d.kb1, &d.kb2, &prep.candidates, &prep.graph, &[], &ParisConfig::default());
        // Seed 40% of the retained gold pairs.
        let seeds: Vec<PairId> = prep
            .candidates
            .ids()
            .filter(|&p| {
                let (u1, u2) = prep.candidates.pair(p);
                d.is_match(u1, u2)
            })
            .enumerate()
            .filter(|(i, _)| i % 5 < 2)
            .map(|(_, p)| p)
            .collect();
        let seeded =
            paris(&d.kb1, &d.kb2, &prep.candidates, &prep.graph, &seeds, &ParisConfig::default());
        let f_un = remp_core::evaluate_matches(unseeded.matches.iter().copied(), &d.gold).f1;
        let f_se = remp_core::evaluate_matches(seeded.matches.iter().copied(), &d.gold).f1;
        assert!(f_se >= f_un - 0.02, "seeded {f_se} vs unseeded {f_un}");
    }

    #[test]
    fn output_is_one_to_one() {
        let (d, prep) = setup();
        let out =
            paris(&d.kb1, &d.kb2, &prep.candidates, &prep.graph, &[], &ParisConfig::default());
        let mut lefts = std::collections::HashSet::new();
        let mut rights = std::collections::HashSet::new();
        for &(u1, u2) in &out.matches {
            assert!(lefts.insert(u1), "left duplicated");
            assert!(rights.insert(u2), "right duplicated");
        }
    }
}
