//! Baseline ER systems the paper compares against (§II, §VIII).
//!
//! All baselines are reimplemented from their published descriptions, as
//! the paper itself did ("we implement Remp and all competing methods …
//! as their codes are not available"), and consume the same retained
//! candidate set `M_rd` as Remp:
//!
//! * [`paris`] — PARIS (Suchanek et al., VLDB'12): iterative probabilistic
//!   alignment via relationship functionality; collective, no crowd.
//! * [`sigma`] — SiGMa (Lacoste-Julien et al., KDD'13): greedy 1:1
//!   matching mixing string similarity with neighbourhood votes.
//! * [`power`] — POWER (Chai et al., VLDB J.'18): partial-order based
//!   crowdsourced ER on grouped similarity vectors.
//! * [`hike`] — HIKE (Zhuang et al., CIKM'17): attribute-signature
//!   partitioning with per-partition monotone (POWER-style) inference.
//! * [`corleone`] — Corleone (Gokhale et al., SIGMOD'14): random-forest
//!   active learning with crowd-labeled uncertain pairs.
//!
//! The crowdsourced baselines share the [`BaselineOutcome`] shape so the
//! bench harness can tabulate F1 and #Q uniformly (Tables III, VI;
//! Fig. 3).

mod corleone;
mod hike;
mod paris;
mod power;
mod sigma;

pub use corleone::{corleone, CorleoneConfig};
pub use hike::{hike, HikeConfig};
pub use paris::{paris, ParisConfig};
pub use power::{power, PowerConfig};
pub use sigma::{sigma, SigmaConfig};

use remp_kb::EntityId;

/// Matches plus cost, shared by every baseline.
#[derive(Clone, Debug)]
pub struct BaselineOutcome {
    /// Predicted entity matches.
    pub matches: Vec<(EntityId, EntityId)>,
    /// Questions asked (0 for the non-crowd baselines).
    pub questions: usize,
}
