//! SiGMa-style greedy matching (Lacoste-Julien et al., KDD'13).
//!
//! SiGMa grows a 1:1 alignment greedily from seed matches: a priority
//! queue holds candidate pairs scored by a convex combination of string
//! similarity and a neighbourhood vote (how many already-accepted matches
//! are adjacent through compatible relationships). Accepting a pair
//! unlocks/boosts its neighbours, mirroring the paper's "simple greedy
//! matching" loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use remp_ergraph::{Candidates, ErGraph, PairId};

use crate::BaselineOutcome;

/// SiGMa parameters.
#[derive(Clone, Copy, Debug)]
pub struct SigmaConfig {
    /// Weight of the string-similarity term (1 − α weighs the votes).
    pub alpha: f64,
    /// Minimum score to accept a pair.
    pub threshold: f64,
}

impl Default for SigmaConfig {
    fn default() -> Self {
        SigmaConfig { alpha: 0.6, threshold: 0.35 }
    }
}

struct QueueEntry {
    score: f64,
    pair: PairId,
    /// Vote count the score was computed with (stale-entry detection).
    votes: usize,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.pair == other.pair
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.pair.cmp(&self.pair))
    }
}

/// Runs SiGMa over the retained candidates; `seeds` are pre-accepted.
pub fn sigma(
    candidates: &Candidates,
    graph: &ErGraph,
    seeds: &[PairId],
    config: &SigmaConfig,
) -> BaselineOutcome {
    let n = candidates.len();
    let mut accepted = vec![false; n];
    let mut left_used = std::collections::HashSet::new();
    let mut right_used = std::collections::HashSet::new();
    let mut votes = vec![0usize; n];

    let score_of = |p: PairId, votes: usize| -> f64 {
        let vote_score = 1.0 - 0.5f64.powi(votes as i32);
        config.alpha * candidates.prior(p) + (1.0 - config.alpha) * vote_score
    };

    let accept = |p: PairId,
                  accepted: &mut Vec<bool>,
                  votes: &mut Vec<usize>,
                  left_used: &mut std::collections::HashSet<_>,
                  right_used: &mut std::collections::HashSet<_>,
                  heap: &mut BinaryHeap<QueueEntry>| {
        let (u1, u2) = candidates.pair(p);
        accepted[p.index()] = true;
        left_used.insert(u1);
        right_used.insert(u2);
        for &(_, w) in graph.edges_from(p) {
            if !accepted[w.index()] {
                votes[w.index()] += 1;
                heap.push(QueueEntry {
                    score: score_of(w, votes[w.index()]),
                    pair: w,
                    votes: votes[w.index()],
                });
            }
        }
    };

    let mut heap: BinaryHeap<QueueEntry> = BinaryHeap::new();
    for &s in seeds {
        if !accepted[s.index()] {
            let (u1, u2) = candidates.pair(s);
            if left_used.contains(&u1) || right_used.contains(&u2) {
                continue;
            }
            accept(s, &mut accepted, &mut votes, &mut left_used, &mut right_used, &mut heap);
        }
    }
    // All candidates enter the queue with their seedless scores.
    for p in candidates.ids() {
        if !accepted[p.index()] {
            heap.push(QueueEntry {
                score: score_of(p, votes[p.index()]),
                pair: p,
                votes: votes[p.index()],
            });
        }
    }

    while let Some(entry) = heap.pop() {
        if entry.score < config.threshold {
            break; // queue is score-sorted: nothing better remains
        }
        let p = entry.pair;
        if accepted[p.index()] || entry.votes != votes[p.index()] {
            continue; // already accepted or stale score
        }
        let (u1, u2) = candidates.pair(p);
        if left_used.contains(&u1) || right_used.contains(&u2) {
            continue; // 1:1 constraint
        }
        accept(p, &mut accepted, &mut votes, &mut left_used, &mut right_used, &mut heap);
    }

    let mut matches: Vec<_> =
        candidates.ids().filter(|&p| accepted[p.index()]).map(|p| candidates.pair(p)).collect();
    matches.sort_unstable();
    BaselineOutcome { matches, questions: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_core::{evaluate_matches, prepare, RempConfig};
    use remp_datasets::{generate, iimb};

    fn setup() -> (remp_datasets::GeneratedDataset, remp_core::PreparedEr) {
        let d = generate(&iimb(0.2));
        let prep = prepare(&d.kb1, &d.kb2, &RempConfig::default());
        (d, prep)
    }

    #[test]
    fn sigma_matches_reasonably() {
        let (d, prep) = setup();
        let out = sigma(&prep.candidates, &prep.graph, &[], &SigmaConfig::default());
        let eval = evaluate_matches(out.matches.iter().copied(), &d.gold);
        assert!(eval.precision > 0.5, "precision {}", eval.precision);
        assert!(eval.recall > 0.3, "recall {}", eval.recall);
    }

    #[test]
    fn one_to_one_enforced() {
        let (d, prep) = setup();
        let _ = d;
        let out = sigma(&prep.candidates, &prep.graph, &[], &SigmaConfig::default());
        let mut ls = std::collections::HashSet::new();
        let mut rs = std::collections::HashSet::new();
        for &(u1, u2) in &out.matches {
            assert!(ls.insert(u1));
            assert!(rs.insert(u2));
        }
    }

    #[test]
    fn seeds_are_kept_and_help() {
        let (d, prep) = setup();
        let seeds: Vec<PairId> = prep
            .candidates
            .ids()
            .filter(|&p| {
                let (u1, u2) = prep.candidates.pair(p);
                d.is_match(u1, u2)
            })
            .take(30)
            .collect();
        let out = sigma(&prep.candidates, &prep.graph, &seeds, &SigmaConfig::default());
        for &s in &seeds {
            assert!(out.matches.contains(&prep.candidates.pair(s)), "seed dropped");
        }
    }

    #[test]
    fn high_threshold_returns_fewer() {
        let (_, prep) = setup();
        let low = sigma(&prep.candidates, &prep.graph, &[], &SigmaConfig::default());
        let high = sigma(
            &prep.candidates,
            &prep.graph,
            &[],
            &SigmaConfig { threshold: 0.9, ..Default::default() },
        );
        assert!(high.matches.len() <= low.matches.len());
    }
}
