//! Corleone-style hands-off crowdsourced ER (Gokhale et al., SIGMOD'14).
//!
//! Corleone learns a random-forest matcher with active learning: starting
//! from a pair of sure seeds, it repeatedly trains a forest on the labeled
//! pairs, sends the most *uncertain* pairs (split tree votes) to the
//! crowd, and stops when uncertainty dries up. The forest then classifies
//! everything. Without inference across pairs, its question count grows
//! with the decision boundary — the paper's Tables III and Fig. 3 show it
//! asking the most questions by far.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use remp_crowd::{infer_truth, LabelSource, TruthConfig, Verdict};
use remp_ergraph::{Candidates, PairId};
use remp_forest::{ForestConfig, RandomForest};
use remp_simil::SimVec;

use crate::BaselineOutcome;

/// Corleone parameters.
#[derive(Clone, Copy, Debug)]
pub struct CorleoneConfig {
    /// Pairs asked per active-learning round.
    pub batch_size: usize,
    /// Maximum active-learning rounds.
    pub max_rounds: usize,
    /// Uncertainty band: pairs with forest probability inside
    /// `(0.5 − band, 0.5 + band)` are considered uncertain.
    pub uncertainty_band: f64,
    /// Fraction of each batch drawn uniformly from the unlabeled pool
    /// (exploration — without it the forest never revisits regions it is
    /// confidently wrong about).
    pub exploration: f64,
    /// Exploration RNG seed.
    pub seed: u64,
    /// Hard question budget.
    pub max_questions: usize,
    /// Truth-inference thresholds.
    pub truth: TruthConfig,
    /// Forest settings.
    pub forest: ForestConfig,
}

impl Default for CorleoneConfig {
    fn default() -> Self {
        CorleoneConfig {
            batch_size: 20,
            max_rounds: 50,
            uncertainty_band: 0.2,
            exploration: 0.3,
            seed: 0xC0E,
            max_questions: 5_000,
            truth: TruthConfig::default(),
            forest: ForestConfig { n_trees: 25, ..ForestConfig::default() },
        }
    }
}

/// Runs Corleone over the retained candidates.
pub fn corleone(
    candidates: &Candidates,
    sim_vectors: &[SimVec],
    truth: &dyn Fn(remp_kb::EntityId, remp_kb::EntityId) -> bool,
    crowd: &mut dyn LabelSource,
    config: &CorleoneConfig,
) -> BaselineOutcome {
    let n = candidates.len();
    if n == 0 {
        return BaselineOutcome { matches: Vec::new(), questions: 0 };
    }
    let features: Vec<Vec<f64>> = (0..n).map(|i| sim_vectors[i].components().to_vec()).collect();

    let mut labeled: Vec<Option<bool>> = vec![None; n];
    let mut questions = 0usize;

    let mut ask = |p: PairId, labeled: &mut Vec<Option<bool>>, questions: &mut usize| {
        let (u1, u2) = candidates.pair(p);
        let labels = crowd.label(truth(u1, u2));
        *questions += 1;
        let (verdict, posterior) = infer_truth(candidates.prior(p), &labels, &config.truth);
        labeled[p.index()] = Some(match verdict {
            Verdict::Match => true,
            Verdict::NonMatch => false,
            Verdict::Inconsistent => posterior > 0.5,
        });
    };

    // Bootstrap: the most/least plausible pairs by prior (Corleone's sure
    // positive/negative seeds).
    let mut by_prior: Vec<PairId> = candidates.ids().collect();
    by_prior.sort_by(|&a, &b| {
        candidates
            .prior(b)
            .partial_cmp(&candidates.prior(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    for &p in by_prior.iter().take(3).chain(by_prior.iter().rev().take(3)) {
        if labeled[p.index()].is_none() && questions < config.max_questions {
            ask(p, &mut labeled, &mut questions);
        }
    }

    let mut forest: Option<RandomForest> = None;
    let mut explore_rng = StdRng::seed_from_u64(config.seed);
    for _ in 0..config.max_rounds {
        if questions >= config.max_questions {
            break;
        }
        // Train on everything labeled so far.
        let (train_x, train_y): (Vec<Vec<f64>>, Vec<bool>) = labeled
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|y| (features[i].clone(), y)))
            .unzip();
        if train_y.iter().all(|&y| y) || !train_y.iter().any(|&y| y) {
            // Only one class labeled: ask more extremes.
            let next = by_prior.iter().find(|&&p| labeled[p.index()].is_none()).copied();
            match next {
                Some(p) => {
                    ask(p, &mut labeled, &mut questions);
                    continue;
                }
                None => break,
            }
        }
        let rf = RandomForest::fit(&train_x, &train_y, &config.forest);

        // Most uncertain unlabeled pairs.
        let mut uncertain: Vec<(f64, PairId)> = candidates
            .ids()
            .filter(|&p| labeled[p.index()].is_none())
            .map(|p| {
                let proba = rf.predict_proba(&features[p.index()]);
                ((proba - 0.5).abs(), p)
            })
            .filter(|&(dist, _)| dist < config.uncertainty_band)
            .collect();
        forest = Some(rf);
        let explore_n =
            ((config.batch_size as f64) * config.exploration.clamp(0.0, 1.0)).round() as usize;
        let exploit_n = config.batch_size.saturating_sub(explore_n);
        // A forest trained on a handful of clean seeds reports false
        // certainty (pure leaves); require a minimum labeled pool before
        // trusting an empty uncertainty region.
        let labeled_count = labeled.iter().filter(|l| l.is_some()).count();
        let min_labels = (n / 25).clamp(40, 400).min(n);
        if uncertain.is_empty() && labeled_count >= min_labels {
            break; // converged: the matcher is confident everywhere
        }
        uncertain.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.1.cmp(&b.1))
        });
        let mut batch: Vec<PairId> = uncertain.iter().take(exploit_n).map(|&(_, p)| p).collect();
        // Exploration: uniform draws from the unlabeled pool.
        let mut pool: Vec<PairId> = candidates
            .ids()
            .filter(|&p| labeled[p.index()].is_none() && !batch.contains(&p))
            .collect();
        pool.shuffle(&mut explore_rng);
        batch.extend(pool.into_iter().take(explore_n));
        if batch.is_empty() {
            break;
        }
        for &p in &batch {
            if questions >= config.max_questions {
                break;
            }
            ask(p, &mut labeled, &mut questions);
        }
    }

    // Final classification.
    let mut matches = Vec::new();
    for p in candidates.ids() {
        let is_match = match labeled[p.index()] {
            Some(y) => y,
            None => forest.as_ref().map(|rf| rf.predict(&features[p.index()])).unwrap_or(false),
        };
        if is_match {
            matches.push(candidates.pair(p));
        }
    }
    matches.sort_unstable();
    BaselineOutcome { matches, questions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_core::{evaluate_matches, prepare, RempConfig};
    use remp_crowd::OracleCrowd;
    use remp_datasets::{generate, iimb};

    fn setup() -> (remp_datasets::GeneratedDataset, remp_core::PreparedEr) {
        let d = generate(&iimb(0.2));
        let prep = prepare(&d.kb1, &d.kb2, &RempConfig::default());
        (d, prep)
    }

    #[test]
    fn corleone_with_oracle_is_accurate() {
        let (d, prep) = setup();
        let mut crowd = OracleCrowd::new();
        let out = corleone(
            &prep.candidates,
            &prep.sim_vectors,
            &|u1, u2| d.is_match(u1, u2),
            &mut crowd,
            &CorleoneConfig::default(),
        );
        let eval = evaluate_matches(out.matches.iter().copied(), &d.gold);
        assert!(eval.f1 > 0.5, "F1 = {}", eval.f1);
        assert!(out.questions > 0);
    }

    #[test]
    fn budget_respected() {
        let (d, prep) = setup();
        let mut crowd = OracleCrowd::new();
        let config = CorleoneConfig { max_questions: 8, ..Default::default() };
        let out = corleone(
            &prep.candidates,
            &prep.sim_vectors,
            &|u1, u2| d.is_match(u1, u2),
            &mut crowd,
            &config,
        );
        assert!(out.questions <= 8);
    }

    #[test]
    fn empty_candidates() {
        let cands = Candidates::from_pairs(std::iter::empty());
        let mut crowd = OracleCrowd::new();
        let out = corleone(&cands, &[], &|_, _| false, &mut crowd, &CorleoneConfig::default());
        assert!(out.matches.is_empty());
        assert_eq!(out.questions, 0);
    }
}
