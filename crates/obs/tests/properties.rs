//! Property tests for the two pieces of `remp-obs` with real math in
//! them: histogram quantile estimation (estimates must stay within the
//! bucket width of the exact sample quantile) and Prometheus text
//! exposition (whatever label values and help texts go in must come
//! back out of the parser unchanged).

use proptest::collection;
use proptest::prelude::*;

use remp_obs::{Exposition, Histogram, MetricsRegistry};

/// The finite bucket bounds every quantile property runs against.
const BOUNDS: [f64; 6] = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];

/// The bucket `(lower, upper]` of `v` under [`BOUNDS`] (`le` semantics,
/// values above the last bound clamp to it — mirroring the estimator).
fn bucket_of(v: f64) -> (f64, f64) {
    let mut lower = 0.0;
    for &upper in &BOUNDS {
        if v <= upper {
            return (lower, upper);
        }
        lower = upper;
    }
    let last = BOUNDS[BOUNDS.len() - 1];
    (BOUNDS[BOUNDS.len() - 2], last)
}

/// Alphabet for adversarial label values/help texts: everything the
/// exposition format must escape, plus multi-byte characters.
const ALPHABET: [char; 9] = ['a', 'B', 'n', '"', '\\', '\n', ' ', 'é', '∞'];

fn string_from(indices: &[usize]) -> String {
    indices.iter().map(|&i| ALPHABET[i % ALPHABET.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The interpolated quantile estimate is never further from the
    /// exact sample quantile than the widths of the buckets involved —
    /// the resolution bound fixed-bucket histograms promise.
    #[test]
    fn quantile_estimates_stay_within_bucket_width(
        values in collection::vec(0.0f64..16.0, 1..80),
        q_raw in 0.0f64..=1.0,
    ) {
        let hist = Histogram::new(&BOUNDS);
        for &v in &values {
            hist.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let rank = ((q_raw * n as f64).ceil() as usize).clamp(1, n);
        let exact = sorted[rank - 1];
        let est = hist.quantile(q_raw).expect("non-empty histogram has quantiles");

        let (exact_lo, exact_hi) = bucket_of(exact);
        let (est_lo, est_hi) = bucket_of(est);
        let allowed = (exact_hi - exact_lo) + (est_hi - est_lo) + 1e-9;
        prop_assert!(
            (est - exact).abs() <= allowed,
            "q={q_raw}: estimate {est} vs exact {exact} (allowed {allowed}, n={n})"
        );
        // The estimate is always inside the observed value range's hull
        // extended to bucket resolution.
        prop_assert!(est >= 0.0 && est <= BOUNDS[BOUNDS.len() - 1]);
    }

    /// Cumulative bucket counts are monotone, end at the total count,
    /// and the sum matches the observations.
    #[test]
    fn cumulative_counts_are_consistent(
        values in collection::vec(0.0f64..40.0, 0..60),
    ) {
        let hist = Histogram::new(&BOUNDS);
        for &v in &values {
            hist.observe(v);
        }
        let cum = hist.cumulative();
        prop_assert_eq!(cum.len(), BOUNDS.len() + 1);
        let mut prev = 0u64;
        for &(_, c) in &cum {
            prop_assert!(c >= prev);
            prev = c;
        }
        prop_assert_eq!(prev, values.len() as u64);
        prop_assert_eq!(hist.count(), values.len() as u64);
        let exact_sum: f64 = values.iter().sum();
        prop_assert!((hist.sum() - exact_sum).abs() <= 1e-9 * (1.0 + exact_sum.abs()));
    }

    /// Label values and help texts survive render → parse, no matter
    /// which quotes, backslashes or newlines they contain; the rendered
    /// form carries HELP/TYPE lines and exactly one sample.
    #[test]
    fn exposition_escaping_round_trips(
        label_raw in collection::vec(0usize..ALPHABET.len(), 0..10),
        help_raw in collection::vec(0usize..ALPHABET.len(), 0..12),
        count in 0u64..1_000_000,
    ) {
        let label = string_from(&label_raw);
        let help = string_from(&help_raw);
        let reg = MetricsRegistry::new();
        reg.counter("prop_round_trip_total", &help, &[("value", &label)]).add(count);
        let text = reg.render();

        let expo = Exposition::parse(&text);
        prop_assert!(expo.is_ok(), "rendered exposition must parse: {:?}\n{text}", expo.err());
        let expo = expo.unwrap();
        prop_assert_eq!(
            expo.types.get("prop_round_trip_total").map(String::as_str),
            Some("counter"),
            "TYPE line present"
        );
        // HELP round-trips when non-empty (an empty help renders as an
        // empty suffix, which the parser reads back as empty).
        prop_assert_eq!(
            expo.helps.get("prop_round_trip_total").cloned().unwrap_or_default(),
            help
        );
        prop_assert_eq!(
            expo.value("prop_round_trip_total", &[("value", &label)]),
            Some(count as f64)
        );
        prop_assert_eq!(expo.samples.len(), 1);
    }
}
