//! `remp-obs` — dependency-free observability for the Remp workspace.
//!
//! The build environment has no crates.io access, so the usual
//! `prometheus`/`tracing` stacks are out; this crate provides the
//! minimal production surface the ROADMAP's fleet-operation goals need,
//! in three layers:
//!
//! * **Metrics** ([`MetricsRegistry`], [`Counter`], [`Gauge`],
//!   [`Histogram`]): atomic instruments behind cheap clonable handles,
//!   rendered in Prometheus text-exposition format (`rempd` serves it
//!   at `GET /metrics`) and parsed back by [`Exposition`] (used by
//!   `rempctl top`, `rempctl metrics` and the round-trip tests).
//!   Histograms use fixed cumulative buckets; p50/p90/p99 come from
//!   linear interpolation within the rank's bucket.
//! * **Spans** ([`time_stage`], [`Span`]): one `Instant` measurement
//!   feeding the caller's own stats struct, the
//!   `remp_stage_seconds{stage}` histogram and — when a collection is
//!   active ([`trace_begin`]/[`trace_take`]) — the `spans.jsonl` trace,
//!   so the numbers in `loop_stats` JSON and `/metrics` can never
//!   drift apart.
//! * **Events** ([`event`], [`events_snapshot`]): a bounded in-memory
//!   ring of structured events plus JSONL to stderr above the
//!   `REMP_LOG` threshold. Emission takes a closure, so a filtered
//!   event allocates nothing.
//!
//! Everything is gated on a process-wide [`enabled`] flag (env
//! `REMP_OBS=0` or [`set_enabled`]): with it off, instruments still
//! exist but spans, metrics recording and events short-circuit before
//! any allocation. Instrumentation is observation-only — it never
//! touches RNG streams, iteration order or control flow, which is what
//! keeps the bit-identical equivalence suites green with tracing fully
//! enabled.

mod events;
mod expo;
mod metrics;
mod rss;
mod trace;

pub use events::{
    event, events_snapshot, set_stderr_level, stderr_level, Event, Level, LOG_ENV, RING_CAPACITY,
};
pub use expo::{Exposition, Sample};
pub use metrics::{
    escape_help, escape_label, format_value, quantile_from_buckets, Counter, Gauge, Histogram,
    MetricsRegistry, SECONDS_BUCKETS,
};
pub use rss::{current_rss_bytes, peak_rss_bytes, sample_peak_rss};
pub use trace::{
    record_stage, spans_to_jsonl, time_stage, trace_active, trace_begin, trace_take, Span,
    SpanRecord,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Environment variable disabling all instrumentation when set to
/// `0`/`false`/`off`.
pub const OBS_ENV: &str = "REMP_OBS";

/// The canonical metric names — one place for code, `METRICS.md` and
/// the CI scrape gate to agree on.
pub mod names {
    /// Histogram: wall-clock seconds per pipeline/session stage
    /// (`stage` label; the nine pipeline stages plus `submit` and
    /// `finalize`).
    pub const STAGE_SECONDS: &str = "remp_stage_seconds";
    /// Counter: propagation refreshes, by `mode` (`incremental`/`full`).
    pub const LOOPS_TOTAL: &str = "remp_loops_total";
    /// Counter: vertices whose probabilistic edges were recomputed.
    pub const LOOP_DIRTY_VERTICES_TOTAL: &str = "remp_loop_dirty_vertices_total";
    /// Counter: Dijkstra sources re-run by the incremental engine.
    pub const LOOP_RECOMPUTED_SOURCES_TOTAL: &str = "remp_loop_recomputed_sources_total";
    /// Counter: crowd questions created by sessions.
    pub const QUESTIONS_ASKED_TOTAL: &str = "remp_questions_asked_total";
    /// Counter: answer sets submitted into sessions (completed
    /// questions).
    pub const ANSWERS_SUBMITTED_TOTAL: &str = "remp_answers_submitted_total";
    /// Counter: HTTP requests served, by `method`, `route`, `status`.
    pub const HTTP_REQUESTS_TOTAL: &str = "remp_http_requests_total";
    /// Histogram: HTTP request latency in seconds, by `route`.
    pub const HTTP_REQUEST_SECONDS: &str = "remp_http_request_seconds";
    /// Gauge: TCP connections currently open on the server.
    pub const HTTP_CONNECTIONS_OPEN: &str = "remp_http_connections_open";
    /// Counter: requests served on an already-established keep-alive
    /// connection (every request after a connection's first).
    pub const HTTP_KEEPALIVE_REUSE_TOTAL: &str = "remp_http_keepalive_reuse_total";
    /// Counter: answer records appended to campaign write-ahead logs.
    pub const WAL_RECORDS_TOTAL: &str = "remp_wal_records_total";
    /// Counter: bytes appended to campaign write-ahead logs.
    pub const WAL_BYTES_TOTAL: &str = "remp_wal_bytes_total";
    /// Gauge: long-poll `/next` requests currently parked server-side.
    pub const LONGPOLL_WAITERS: &str = "remp_longpoll_waiters";
    /// Counter: structured events emitted, by `level`.
    pub const EVENTS_TOTAL: &str = "remp_events_total";
    /// Counter: leases granted, per `campaign`.
    pub const LEASES_ISSUED_TOTAL: &str = "remp_leases_issued_total";
    /// Counter: leases that expired unanswered, per `campaign`.
    pub const LEASES_EXPIRED_TOTAL: &str = "remp_leases_expired_total";
    /// Counter: grants that re-issued an expired slot, per `campaign`.
    pub const LEASES_REISSUED_TOTAL: &str = "remp_leases_reissued_total";
    /// Gauge: currently open questions, per `campaign`.
    pub const CAMPAIGN_OPEN_QUESTIONS: &str = "remp_campaign_open_questions";
    /// Gauge: questions asked so far, per `campaign`.
    pub const CAMPAIGN_QUESTIONS_ASKED: &str = "remp_campaign_questions_asked";
    /// Gauge: registered workers, per `campaign`.
    pub const CAMPAIGN_WORKERS: &str = "remp_campaign_workers";
    /// Gauge: 1 when the campaign is complete, else 0, per `campaign`.
    pub const CAMPAIGN_COMPLETE: &str = "remp_campaign_complete";
    /// Counter: simulator ticks executed.
    pub const SIM_TICKS_TOTAL: &str = "remp_sim_ticks_total";
    /// Counter: simulated answers delivered into engines.
    pub const SIM_DELIVERED_TOTAL: &str = "remp_sim_delivered_total";
    /// Gauge: peak resident set size of the process in bytes (`VmHWM`
    /// from `/proc/self/status`), sampled by
    /// [`sample_peak_rss`](crate::sample_peak_rss).
    pub const PEAK_RSS_BYTES: &str = "remp_peak_rss_bytes";
}

fn enabled_cell() -> &'static AtomicBool {
    static CELL: OnceLock<AtomicBool> = OnceLock::new();
    CELL.get_or_init(|| {
        let off = std::env::var(OBS_ENV)
            .is_ok_and(|v| matches!(v.to_ascii_lowercase().as_str(), "0" | "false" | "off"));
        AtomicBool::new(!off)
    })
}

/// Whether instrumentation is recording (default on; `REMP_OBS=0`
/// starts it off).
pub fn enabled() -> bool {
    enabled_cell().load(Ordering::Relaxed)
}

/// Turns all metric/span/event recording on or off at runtime — the
/// bench overhead comparison flips this around its disabled runs.
pub fn set_enabled(on: bool) {
    enabled_cell().store(on, Ordering::Relaxed);
}

/// The process-wide registry every layer records into and `/metrics`
/// renders from.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that flip the process-wide enabled flag.
    fn enabled_flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counters_and_gauges_read_back() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let clone = c.clone();
        clone.inc();
        assert_eq!(c.get(), 6, "clones share the cell");
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_cumulate_and_quantiles_interpolate() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 9.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 15.5).abs() < 1e-12);
        assert_eq!(h.cumulative(), vec![(1.0, 1), (2.0, 3), (4.0, 4), (f64::INFINITY, 5)]);
        // Median rank 2.5 lands in (1,2]: 1 + (2.5-1)/2 * 1 = 1.75.
        assert!((h.quantile(0.5).unwrap() - 1.75).abs() < 1e-12);
        // q=1 lands in +Inf, clamped to the largest finite bound.
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), None, "empty histogram");
    }

    #[test]
    fn registry_get_or_create_shares_and_register_replaces() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("t_shared_total", "h", &[("k", "v")]);
        let b = reg.counter("t_shared_total", "h", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same (name, labels) share one cell");
        let owned = Counter::new();
        owned.add(7);
        reg.register_counter("t_shared_total", "h", &[("k", "v")], &owned);
        let rendered = reg.render();
        assert!(rendered.contains("t_shared_total{k=\"v\"} 7"), "{rendered}");
        reg.remove_label_value("k", "v");
        assert_eq!(reg.series_count(), 0);
    }

    #[test]
    fn render_round_trips_through_the_parser() {
        let reg = MetricsRegistry::new();
        reg.counter("t_requests_total", "Requests served.", &[("route", "/campaigns/{id}")]).add(3);
        reg.gauge("t_open", "Open questions.", &[]).set(4.5);
        let h = reg.histogram("t_latency_seconds", "Latency.", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = reg.render();
        let expo = Exposition::parse(&text).expect("rendered exposition parses");
        assert_eq!(expo.types.get("t_requests_total").map(String::as_str), Some("counter"));
        assert_eq!(expo.value("t_requests_total", &[("route", "/campaigns/{id}")]), Some(3.0));
        assert_eq!(expo.value("t_open", &[]), Some(4.5));
        assert_eq!(expo.value("t_latency_seconds_bucket", &[("le", "+Inf")]), Some(3.0));
        assert_eq!(expo.value("t_latency_seconds_count", &[]), Some(3.0));
        let p50 = expo.histogram_quantile("t_latency_seconds", &[], 0.5).unwrap();
        assert!((0.0..=1.0).contains(&p50), "{p50}");
    }

    #[test]
    fn label_escaping_round_trips() {
        let reg = MetricsRegistry::new();
        let tricky = "quote \" slash \\ nl \n end";
        reg.counter("t_esc_total", "Help with \\ and\nnewline.", &[("v", tricky)]).inc();
        let text = reg.render();
        let expo = Exposition::parse(&text).expect("escaped exposition parses");
        assert_eq!(expo.value("t_esc_total", &[("v", tricky)]), Some(1.0));
        assert_eq!(
            expo.helps.get("t_esc_total").map(String::as_str),
            Some("Help with \\ and\nnewline.")
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "1bad_name 3",
            "name{le=\"0.1} 3",
            "name{le} 3",
            "name{} ",
            "name 1 2 3",
            "name{a=\"b\"} nope",
            "# TYPE t weird",
        ] {
            assert!(Exposition::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn time_stage_measures_and_records() {
        let _guard = enabled_flag_lock();
        set_enabled(true);
        let before = global()
            .histogram(names::STAGE_SECONDS, "h", &[("stage", "obs_test_stage")], SECONDS_BUCKETS)
            .count();
        let ((), secs) = time_stage("obs_test_stage", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert!(secs >= 0.002);
        let after = global()
            .histogram(names::STAGE_SECONDS, "h", &[("stage", "obs_test_stage")], SECONDS_BUCKETS)
            .count();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn trace_collects_spans_in_order() {
        let _guard = enabled_flag_lock();
        set_enabled(true);
        trace_begin();
        time_stage("obs_trace_a", || {});
        time_stage("obs_trace_b", || {});
        let spans = trace_take();
        let names: Vec<&str> =
            spans.iter().filter(|s| s.name.starts_with("obs_trace_")).map(|s| s.name).collect();
        assert_eq!(names, ["obs_trace_a", "obs_trace_b"]);
        let jsonl = spans_to_jsonl(&spans);
        for line in jsonl.lines() {
            remp_json::Json::parse(line).expect("every spans.jsonl line is JSON");
        }
        assert!(trace_take().is_empty(), "collection stops after take");
    }

    #[test]
    fn events_enter_the_ring_and_respect_levels() {
        let _guard = enabled_flag_lock();
        set_enabled(true);
        set_stderr_level(None);
        event(Level::Info, "obs.test", Some("ring-c0"), || {
            ("hello".to_owned(), vec![("n", remp_json::Json::from(1u64))])
        });
        event(Level::Debug, "obs.test", Some("ring-c0"), || {
            panic!("debug events below every sink must not be built")
        });
        let events = events_snapshot(Some("ring-c0"), 10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "hello");
        assert_eq!(events[0].to_json().get("campaign").and_then(|j| j.as_str()), Some("ring-c0"));
        assert!(events_snapshot(Some("no-such-campaign"), 10).is_empty());
    }

    #[test]
    fn disabled_mode_skips_recording_but_still_times() {
        let _guard = enabled_flag_lock();
        set_enabled(false);
        let before = global()
            .histogram(names::STAGE_SECONDS, "h", &[("stage", "obs_disabled")], SECONDS_BUCKETS)
            .count();
        let ((), secs) = time_stage("obs_disabled", || {});
        assert!(secs >= 0.0);
        event(Level::Error, "obs.test", None, || panic!("disabled events must not be built"));
        let after = global()
            .histogram(names::STAGE_SECONDS, "h", &[("stage", "obs_disabled")], SECONDS_BUCKETS)
            .count();
        assert_eq!(after, before);
        set_enabled(true);
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("WARN"), Some(Some(Level::Warn)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("noisy"), None);
        assert!(Level::Debug < Level::Error);
    }
}
