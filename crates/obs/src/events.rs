//! The structured event log: a bounded in-memory ring plus JSONL to
//! stderr above a `REMP_LOG` threshold.
//!
//! Events are emitted through [`event`], which takes a *closure* so the
//! message and key/value strings are only built when some sink will
//! accept the event — with observability disabled (or the level below
//! every threshold) an emit is two atomic loads and no allocation.
//! The ring keeps the most recent [`RING_CAPACITY`] events at
//! [`Level::Info`] and above; `rempd` serves it at
//! `GET /campaigns/{id}/events`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use remp_json::Json;

/// Environment variable selecting the stderr threshold
/// (`debug|info|warn|error|off`, default `warn`).
pub const LOG_ENV: &str = "REMP_LOG";

/// Events kept in the in-memory ring.
pub const RING_CAPACITY: usize = 4096;

/// Event severity, ascending.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Development detail; never enters the ring.
    Debug,
    /// Normal operational events (requests, submits, checkpoints).
    Info,
    /// Something unexpected but survivable.
    Warn,
    /// A failed operation.
    Error,
}

impl Level {
    /// The wire/display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a level name (`off` parses to `None`).
    pub fn parse(raw: &str) -> Option<Option<Level>> {
        match raw.to_ascii_lowercase().as_str() {
            "debug" => Some(Some(Level::Debug)),
            "info" => Some(Some(Level::Info)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "error" => Some(Some(Level::Error)),
            "off" | "none" => Some(None),
            _ => None,
        }
    }
}

/// One structured event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Unix milliseconds at emit time.
    pub ts_ms: u64,
    /// Severity.
    pub level: Level,
    /// The emitting subsystem (`serve.http`, `core.session`, …).
    pub target: &'static str,
    /// Campaign id, when the event belongs to one.
    pub campaign: Option<String>,
    /// Human-readable message.
    pub message: String,
    /// Structured fields.
    pub kv: Vec<(&'static str, Json)>,
}

impl Event {
    /// The JSON form used both for the stderr JSONL stream and the
    /// `/campaigns/{id}/events` response.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("ts_ms".to_owned(), Json::from(self.ts_ms)),
            ("level".to_owned(), Json::from(self.level.as_str())),
            ("target".to_owned(), Json::from(self.target)),
        ];
        if let Some(c) = &self.campaign {
            fields.push(("campaign".to_owned(), Json::from(c.as_str())));
        }
        fields.push(("msg".to_owned(), Json::from(self.message.as_str())));
        for (k, v) in &self.kv {
            fields.push(((*k).to_owned(), v.clone()));
        }
        Json::Obj(fields)
    }
}

/// Stderr threshold encoded for the atomic: 0..=3 = level, 4 = off.
fn encode(level: Option<Level>) -> u8 {
    level.map_or(4, |l| l as u8)
}

fn stderr_threshold_cell() -> &'static AtomicU8 {
    static CELL: OnceLock<AtomicU8> = OnceLock::new();
    CELL.get_or_init(|| {
        let from_env = std::env::var(LOG_ENV).ok().and_then(|raw| Level::parse(&raw));
        AtomicU8::new(encode(from_env.unwrap_or(Some(Level::Warn))))
    })
}

/// The current stderr threshold (`None` = silent).
pub fn stderr_level() -> Option<Level> {
    match stderr_threshold_cell().load(Ordering::Relaxed) {
        0 => Some(Level::Debug),
        1 => Some(Level::Info),
        2 => Some(Level::Warn),
        3 => Some(Level::Error),
        _ => None,
    }
}

/// Overrides the stderr threshold (normally set once via `REMP_LOG`).
pub fn set_stderr_level(level: Option<Level>) {
    stderr_threshold_cell().store(encode(level), Ordering::Relaxed);
}

fn ring() -> &'static Mutex<VecDeque<Event>> {
    static RING: OnceLock<Mutex<VecDeque<Event>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// Emits a structured event. The closure builds `(message, fields)` and
/// runs only when observability is enabled *and* the level clears the
/// ring floor ([`Level::Info`]) or the stderr threshold — otherwise the
/// call allocates nothing.
pub fn event<F>(level: Level, target: &'static str, campaign: Option<&str>, build: F)
where
    F: FnOnce() -> (String, Vec<(&'static str, Json)>),
{
    if !crate::enabled() {
        return;
    }
    let to_stderr = stderr_level().is_some_and(|min| level >= min);
    let to_ring = level >= Level::Info;
    if !to_stderr && !to_ring {
        return;
    }
    let (message, kv) = build();
    let ev = Event {
        ts_ms: now_ms(),
        level,
        target,
        campaign: campaign.map(str::to_owned),
        message,
        kv,
    };
    crate::global()
        .counter(
            crate::names::EVENTS_TOTAL,
            "Structured events emitted, by level.",
            &[("level", level.as_str())],
        )
        .inc();
    if to_stderr {
        eprintln!("{}", ev.to_json());
    }
    if to_ring {
        let mut ring = ring().lock().expect("event ring poisoned");
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(ev);
    }
}

/// A snapshot of the ring, oldest first, optionally filtered to one
/// campaign and truncated to the most recent `limit` entries.
pub fn events_snapshot(campaign: Option<&str>, limit: usize) -> Vec<Event> {
    let ring = ring().lock().expect("event ring poisoned");
    let matching =
        ring.iter().filter(|e| campaign.is_none_or(|c| e.campaign.as_deref() == Some(c)));
    let total = matching.clone().count();
    matching.skip(total.saturating_sub(limit)).cloned().collect()
}
