//! Stage spans: one `Instant` per measurement feeding every sink.
//!
//! [`time_stage`] (and the RAII [`Span`]) is how the pipeline, session
//! and server record durations. A single measurement lands in up to
//! three places — the caller (who usually stores the seconds in its own
//! stats struct, e.g. `RefreshStats`), the global
//! `remp_stage_seconds{stage}` histogram, and, when a trace collection
//! is active, the in-memory span list that `rempctl run --trace-out`
//! writes as `spans.jsonl`. One clock read means the numbers can never
//! drift apart.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use remp_json::Json;

use crate::metrics::SECONDS_BUCKETS;

/// One completed span of a trace collection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanRecord {
    /// Stage name (`prune`, `consistency`, `submit`, …).
    pub name: &'static str,
    /// Seconds from the start of the collection to span start.
    pub start_s: f64,
    /// Span duration in seconds.
    pub dur_s: f64,
}

impl SpanRecord {
    /// One `spans.jsonl` line (without the trailing newline).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::from(self.name)),
            ("start_s".to_owned(), Json::from(self.start_s)),
            ("dur_s".to_owned(), Json::from(self.dur_s)),
        ])
    }
}

struct TraceState {
    epoch: Instant,
    records: Vec<SpanRecord>,
}

static TRACE_ACTIVE: AtomicBool = AtomicBool::new(false);

fn trace_cell() -> &'static Mutex<Option<TraceState>> {
    static CELL: OnceLock<Mutex<Option<TraceState>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

/// Starts (or restarts) collecting spans; timestamps are relative to
/// this call.
pub fn trace_begin() {
    let mut cell = trace_cell().lock().expect("trace collector poisoned");
    *cell = Some(TraceState { epoch: Instant::now(), records: Vec::new() });
    TRACE_ACTIVE.store(true, Ordering::Release);
}

/// Whether a trace collection is active.
pub fn trace_active() -> bool {
    TRACE_ACTIVE.load(Ordering::Acquire)
}

/// Stops collecting and returns everything recorded since
/// [`trace_begin`] (empty if no collection was active).
pub fn trace_take() -> Vec<SpanRecord> {
    TRACE_ACTIVE.store(false, Ordering::Release);
    let mut cell = trace_cell().lock().expect("trace collector poisoned");
    cell.take().map(|state| state.records).unwrap_or_default()
}

/// Renders spans as JSONL, one object per line — the `spans.jsonl`
/// artifact consumed by offline flamegraph-style tooling.
pub fn spans_to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for span in spans {
        out.push_str(&span.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Records one finished span into the histogram and (if active) the
/// trace collection. No-op while observability is disabled.
pub fn record_stage(name: &'static str, started: Instant, dur_s: f64) {
    if !crate::enabled() {
        return;
    }
    crate::global()
        .histogram(
            crate::names::STAGE_SECONDS,
            "Wall-clock seconds of pipeline/session stages, by stage.",
            &[("stage", name)],
            SECONDS_BUCKETS,
        )
        .observe(dur_s);
    if trace_active() {
        let mut cell = trace_cell().lock().expect("trace collector poisoned");
        if let Some(state) = cell.as_mut() {
            let start_s =
                started.checked_duration_since(state.epoch).map_or(0.0, |d| d.as_secs_f64());
            state.records.push(SpanRecord { name, start_s, dur_s });
        }
    }
}

/// Runs `f`, returning its output and the measured seconds after
/// feeding the span through [`record_stage`]. The measurement happens
/// unconditionally (callers store the seconds in their own stats);
/// only the metric/trace recording is gated on [`crate::enabled`].
pub fn time_stage<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let started = Instant::now();
    let out = f();
    let dur_s = started.elapsed().as_secs_f64();
    record_stage(name, started, dur_s);
    (out, dur_s)
}

/// An RAII span: records `name` from construction to drop — for code
/// paths with early returns where [`time_stage`]'s closure shape does
/// not fit.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    started: Instant,
}

impl Span {
    /// Opens a span; it records when dropped.
    pub fn enter(name: &'static str) -> Span {
        Span { name, started: Instant::now() }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        record_stage(self.name, self.started, self.started.elapsed().as_secs_f64());
    }
}
