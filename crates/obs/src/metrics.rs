//! Atomic metric primitives and the registry that renders them.
//!
//! Three instrument kinds, all cheap `Arc`-backed handles safe to clone
//! into hot loops: [`Counter`] (monotone `u64`), [`Gauge`] (an `f64`
//! cell) and [`Histogram`] (fixed upper-bound buckets with a CAS-summed
//! `f64` total, quantiles estimated by linear interpolation within the
//! bucket). A [`MetricsRegistry`] maps `(name, labels)` to instruments
//! and renders the whole collection in Prometheus text-exposition
//! format (version 0.0.4).
//!
//! Two registration flavours cover the two ownership patterns in the
//! workspace: [`MetricsRegistry::counter`] *gets or creates* a shared
//! process-wide series (two callers asking for the same name and labels
//! increment the same cell), while [`MetricsRegistry::register_counter`]
//! *replaces* the series with a caller-owned handle — the campaign
//! engine owns its lease counters (its tests assert exact values) and
//! the registry merely exposes them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable `f64` cell (stored as bits in an atomic).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Latency buckets (seconds) shared by every duration histogram in the
/// workspace: 100 µs up to 10 s, roughly ×2.5 apart. The `+Inf` bucket
/// is implicit.
pub const SECONDS_BUCKETS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

#[derive(Debug)]
struct HistogramInner {
    /// Finite upper bounds, strictly ascending.
    uppers: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; one extra slot
    /// at the end for values above the last finite bound (`+Inf`).
    buckets: Vec<AtomicU64>,
    /// Sum of all observed values, stored as `f64` bits.
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram with cumulative Prometheus rendering and
/// interpolated quantile estimates.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A histogram over the given finite upper bounds (ascending,
    /// deduplicated; non-finite entries are dropped). The `+Inf` bucket
    /// is always added.
    pub fn new(uppers: &[f64]) -> Histogram {
        let mut bounds: Vec<f64> = uppers.iter().copied().filter(|u| u.is_finite()).collect();
        bounds.sort_by(|a, b| a.total_cmp(b));
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            uppers: bounds,
            buckets,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }))
    }

    /// Records one value.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        let idx = inner.uppers.partition_point(|&u| u < v);
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs, ending with the
    /// `(+Inf, total)` bucket — the exposition form.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.0.uppers.len() + 1);
        let mut cum = 0u64;
        for (i, &upper) in self.0.uppers.iter().enumerate() {
            cum += self.0.buckets[i].load(Ordering::Relaxed);
            out.push((upper, cum));
        }
        cum += self.0.buckets[self.0.uppers.len()].load(Ordering::Relaxed);
        out.push((f64::INFINITY, cum));
        out
    }

    /// Estimates the `q`-quantile (`0 < q ≤ 1`) the way Prometheus'
    /// `histogram_quantile` does: find the bucket holding rank
    /// `q × count`, then interpolate linearly inside it. Observations
    /// landing in the `+Inf` bucket clamp to the largest finite bound.
    /// Returns `None` while the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.cumulative(), q)
    }
}

/// Quantile estimation over cumulative `(le, count)` buckets (the last
/// entry being `+Inf`); shared by live [`Histogram`]s and the scraped
/// form ([`crate::Exposition::histogram_quantile`]).
pub fn quantile_from_buckets(cumulative: &[(f64, u64)], q: f64) -> Option<f64> {
    let (_, total) = *cumulative.last()?;
    if total == 0 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let rank = q * total as f64;
    let mut lower = 0.0;
    let mut prev_cum = 0u64;
    for &(upper, cum) in cumulative {
        if (cum as f64) >= rank && cum > prev_cum {
            if upper.is_infinite() {
                // Everything above the largest finite bound is clamped
                // to it (with no finite bucket at all, fall back to 0).
                return Some(lower);
            }
            let in_bucket = (cum - prev_cum) as f64;
            let into = (rank - prev_cum as f64).max(0.0);
            return Some(lower + (upper - lower) * (into / in_bucket).min(1.0));
        }
        if !upper.is_infinite() {
            lower = upper;
        }
        prev_cum = cum;
    }
    None
}

/// One registered instrument.
#[derive(Clone, Debug)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Series {
    fn kind(&self) -> &'static str {
        match self {
            Series::Counter(_) => "counter",
            Series::Gauge(_) => "gauge",
            Series::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// `name → (help, kind)`; one family per metric name.
    families: BTreeMap<String, (String, &'static str)>,
    /// `name → label set → instrument`. The outer map keeps families
    /// sorted; the inner map keeps label sets deterministic.
    series: BTreeMap<String, BTreeMap<Vec<(String, String)>, Series>>,
}

/// A collection of named, labelled instruments renderable as Prometheus
/// text exposition. Usually used through [`crate::global`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn upsert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
        replace: bool,
    ) -> Series {
        let key: Vec<(String, String)> =
            labels.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect();
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let slot = inner.series.entry(name.to_owned()).or_default().entry(key);
        let series = match slot {
            std::collections::btree_map::Entry::Occupied(mut e) if replace => {
                let fresh = make();
                e.insert(fresh.clone());
                fresh
            }
            std::collections::btree_map::Entry::Occupied(e) => e.get().clone(),
            std::collections::btree_map::Entry::Vacant(e) => e.insert(make()).clone(),
        };
        inner.families.insert(name.to_owned(), (help.to_owned(), series.kind()));
        series
    }

    /// Gets or creates the counter `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.upsert(name, help, labels, || Series::Counter(Counter::new()), false) {
            Series::Counter(c) => c,
            _ => Counter::new(), // kind clash: hand back a detached instrument
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.upsert(name, help, labels, || Series::Gauge(Gauge::new()), false) {
            Series::Gauge(g) => g,
            _ => Gauge::new(),
        }
    }

    /// Gets or creates the histogram `name{labels}` over `buckets`.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[f64],
    ) -> Histogram {
        match self.upsert(name, help, labels, || Series::Histogram(Histogram::new(buckets)), false)
        {
            Series::Histogram(h) => h,
            _ => Histogram::new(buckets),
        }
    }

    /// Exposes a caller-owned counter as `name{labels}`, replacing any
    /// previous series under that key (a restarted campaign re-registers
    /// its fresh counters under the same id).
    pub fn register_counter(&self, name: &str, help: &str, labels: &[(&str, &str)], c: &Counter) {
        let handle = c.clone();
        self.upsert(name, help, labels, move || Series::Counter(handle), true);
    }

    /// Exposes a caller-owned gauge as `name{labels}`, replacing any
    /// previous series under that key.
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)], g: &Gauge) {
        let handle = g.clone();
        self.upsert(name, help, labels, move || Series::Gauge(handle), true);
    }

    /// Drops every series carrying the label `key="value"` — campaign
    /// teardown removes the campaign's gauges and counters.
    pub fn remove_label_value(&self, key: &str, value: &str) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        for by_labels in inner.series.values_mut() {
            by_labels.retain(|labels, _| !labels.iter().any(|(k, v)| k == key && v == value));
        }
        inner.series.retain(|_, by_labels| !by_labels.is_empty());
    }

    /// Number of registered series (label sets, not families).
    pub fn series_count(&self) -> usize {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner.series.values().map(BTreeMap::len).sum()
    }

    /// Renders the whole registry as Prometheus text exposition
    /// (`text/plain; version=0.0.4`): families sorted by name, each with
    /// its `# HELP` / `# TYPE` header, histograms expanded into
    /// cumulative `_bucket{le=…}` plus `_sum` / `_count`.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, by_labels) in &inner.series {
            if by_labels.is_empty() {
                continue;
            }
            if let Some((help, kind)) = inner.families.get(name) {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push(' ');
                out.push_str(&escape_help(help));
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
            }
            for (labels, series) in by_labels {
                match series {
                    Series::Counter(c) => {
                        render_sample(&mut out, name, labels, &[], &format_value(c.get() as f64));
                    }
                    Series::Gauge(g) => {
                        render_sample(&mut out, name, labels, &[], &format_value(g.get()));
                    }
                    Series::Histogram(h) => {
                        for (upper, cum) in h.cumulative() {
                            let le = if upper.is_infinite() {
                                "+Inf".to_owned()
                            } else {
                                format_value(upper)
                            };
                            render_sample(
                                &mut out,
                                &format!("{name}_bucket"),
                                labels,
                                &[("le", &le)],
                                &format_value(cum as f64),
                            );
                        }
                        render_sample(
                            &mut out,
                            &format!("{name}_sum"),
                            labels,
                            &[],
                            &format_value(h.sum()),
                        );
                        render_sample(
                            &mut out,
                            &format!("{name}_count"),
                            labels,
                            &[],
                            &format_value(h.count() as f64),
                        );
                    }
                }
            }
        }
        out
    }
}

/// Writes one `name{labels,extra} value` line.
fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in
            labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Escapes a `# HELP` text: backslash and newline.
pub fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote and newline.
pub fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Formats a sample value the way Prometheus expects: shortest
/// round-trip `f64`, with `+Inf`/`-Inf` spelled out.
pub fn format_value(v: f64) -> String {
    if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_owned()
    } else {
        format!("{v}")
    }
}
