//! A small parser for the Prometheus text-exposition format — the
//! inverse of [`crate::MetricsRegistry::render`].
//!
//! `rempctl top` scrapes `/metrics` and reads its table cells out of the
//! parsed [`Exposition`]; `rempctl metrics` uses the same parser as a
//! well-formedness gate in CI; the crate's round-trip tests feed
//! rendered registries back through it.

use std::collections::BTreeMap;

use crate::metrics::quantile_from_buckets;

/// One sample line: `name{labels} value`.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms this is the expanded name, e.g.
    /// `remp_http_request_seconds_bucket`).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether every pair in `subset` appears among this sample's labels.
    pub fn matches(&self, subset: &[(&str, &str)]) -> bool {
        subset.iter().all(|&(k, v)| self.label(k) == Some(v))
    }
}

/// A parsed scrape: `# TYPE` / `# HELP` headers plus every sample.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    /// `name → type` from `# TYPE` lines.
    pub types: BTreeMap<String, String>,
    /// `name → help` from `# HELP` lines (escapes undone).
    pub helps: BTreeMap<String, String>,
    /// All samples in source order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// Parses an exposition document, failing with a line-numbered
    /// message on the first malformed line.
    pub fn parse(text: &str) -> Result<Exposition, String> {
        let mut out = Exposition::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.strip_suffix('\r').unwrap_or(raw);
            if line.trim().is_empty() {
                continue;
            }
            let lineno = idx + 1;
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim_start();
                if let Some(body) = rest.strip_prefix("HELP ") {
                    let (name, help) = body
                        .split_once(' ')
                        .map(|(n, h)| (n, h.to_owned()))
                        .unwrap_or((body, String::new()));
                    check_name(name, lineno)?;
                    out.helps.insert(name.to_owned(), unescape_help(&help));
                } else if let Some(body) = rest.strip_prefix("TYPE ") {
                    let (name, kind) = body
                        .split_once(' ')
                        .ok_or_else(|| format!("line {lineno}: TYPE needs a kind"))?;
                    check_name(name, lineno)?;
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                    }
                    out.types.insert(name.to_owned(), kind.to_owned());
                }
                // Any other comment line is legal and ignored.
                continue;
            }
            out.samples.push(parse_sample(line, lineno)?);
        }
        Ok(out)
    }

    /// The value of `name{labels ⊇ subset}` — the first matching sample.
    pub fn value(&self, name: &str, subset: &[(&str, &str)]) -> Option<f64> {
        self.samples.iter().find(|s| s.name == name && s.matches(subset)).map(|s| s.value)
    }

    /// The sum of `name` over every label set.
    pub fn total(&self, name: &str) -> f64 {
        self.samples.iter().filter(|s| s.name == name).map(|s| s.value).sum()
    }

    /// Whether the family `name` has at least one sample — for
    /// histograms, a `name_count` sample.
    pub fn has_family(&self, name: &str) -> bool {
        let count = format!("{name}_count");
        self.samples.iter().any(|s| s.name == name || s.name == count)
    }

    /// Estimates the `q`-quantile of the histogram family `name`,
    /// aggregating `name_bucket` samples (matching `subset`) across all
    /// label sets, exactly like the PromQL idiom
    /// `histogram_quantile(q, sum by (le) (name_bucket))`.
    pub fn histogram_quantile(&self, name: &str, subset: &[(&str, &str)], q: f64) -> Option<f64> {
        let bucket_name = format!("{name}_bucket");
        let mut by_le: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
        for s in self.samples.iter().filter(|s| s.name == bucket_name && s.matches(subset)) {
            let le = parse_value(s.label("le")?).ok()?;
            // Order by the bit pattern shifted so +Inf sorts last.
            let key = ordered_bits(le);
            let entry = by_le.entry(key).or_insert((le, 0));
            entry.1 += s.value as u64;
        }
        let cumulative: Vec<(f64, u64)> = by_le.into_values().collect();
        quantile_from_buckets(&cumulative, q)
    }
}

/// Maps an `le` bound to a sort key ascending in value (`+Inf` last).
/// Bounds are non-negative in practice, so the IEEE bit pattern orders.
fn ordered_bits(v: f64) -> u64 {
    v.max(0.0).to_bits()
}

/// Undoes [`crate::escape_help`] left to right (`\\` then `\n`; a
/// naive double-`replace` would corrupt a literal backslash-`n`).
fn unescape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn check_name(name: &str, lineno: usize) -> Result<(), String> {
    let mut chars = name.chars();
    let head_ok = chars.next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        Ok(())
    } else {
        Err(format!("line {lineno}: invalid metric name {name:?}"))
    }
}

fn parse_value(raw: &str) -> Result<f64, String> {
    match raw {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other.parse::<f64>().map_err(|_| format!("bad sample value {other:?}")),
    }
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let bad = |what: &str| format!("line {lineno}: {what}");
    let (name, mut rest) = match line.find(['{', ' ', '\t']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return Err(bad("sample line has no value")),
    };
    check_name(name, lineno)?;
    let mut labels = Vec::new();
    if let Some(body) = rest.strip_prefix('{') {
        let bytes = body.as_bytes();
        let mut i = 0usize;
        loop {
            while i < bytes.len() && (bytes[i] == b',' || bytes[i].is_ascii_whitespace()) {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(bad("unterminated label set"));
            }
            if bytes[i] == b'}' {
                i += 1;
                break;
            }
            let key_start = i;
            while i < bytes.len() && bytes[i] != b'=' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(bad("label without '='"));
            }
            let key = body[key_start..i].trim().to_owned();
            if key.is_empty() {
                return Err(bad("empty label name"));
            }
            i += 1; // consume '='
            if i >= bytes.len() || bytes[i] != b'"' {
                return Err(bad("label value must be quoted"));
            }
            i += 1; // consume opening quote
            let mut value = String::new();
            let mut closed = false;
            let mut chars = body[i..].char_indices();
            while let Some((off, c)) = chars.next() {
                match c {
                    '"' => {
                        i += off + 1;
                        closed = true;
                        break;
                    }
                    '\\' => match chars.next() {
                        Some((_, 'n')) => value.push('\n'),
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        _ => return Err(bad("bad escape in label value")),
                    },
                    other => value.push(other),
                }
            }
            if !closed {
                return Err(bad("unterminated label value"));
            }
            labels.push((key, value));
        }
        rest = &body[i..];
    }
    let mut fields = rest.split_whitespace();
    let value = parse_value(fields.next().ok_or_else(|| bad("sample line has no value"))?)
        .map_err(|e| bad(&e))?;
    // An optional trailing timestamp is legal; anything further is not.
    if fields.next().is_some() && fields.next().is_some() {
        return Err(bad("trailing garbage after sample value"));
    }
    Ok(Sample { name: name.to_owned(), labels, value })
}
