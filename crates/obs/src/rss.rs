//! Process memory introspection: the `remp_peak_rss_bytes` gauge.
//!
//! The scale work (PR 9) promises campaigns whose peak resident set is
//! sublinear in the candidate cross-product; that promise is only
//! enforceable if the number is observable. On Linux the kernel already
//! tracks it — `VmHWM` in `/proc/self/status` is the resident-set
//! high-water mark — so sampling is one small file read, no allocation
//! churn of its own.
//!
//! Samples are taken at natural checkpoints rather than on a timer:
//! `rempd` samples when `/metrics` is scraped, `rempctl top` shows the
//! value, the pipeline/scale bench harnesses sample after each run and
//! embed the figure in their reports, and `rempctl bench --scale
//! --max-rss-mb N` turns the gauge into a hard gate.

use crate::Gauge;

/// The peak resident set size (`VmHWM`) of this process in bytes, or
/// `None` where `/proc/self/status` is unavailable (non-Linux).
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kib("VmHWM:").map(|kib| kib * 1024)
}

/// The current resident set size (`VmRSS`) in bytes, if available.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kib("VmRSS:").map(|kib| kib * 1024)
}

/// Reads one `kB` field from `/proc/self/status`.
fn proc_status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Samples `VmHWM` into the global [`crate::names::PEAK_RSS_BYTES`]
/// gauge and returns the sampled value in bytes.
///
/// A no-op (returning `None`) when observability is disabled or the
/// platform has no `/proc/self/status`.
pub fn sample_peak_rss() -> Option<u64> {
    if !crate::enabled() {
        return None;
    }
    let bytes = peak_rss_bytes()?;
    peak_rss_gauge().set(bytes as f64);
    Some(bytes)
}

/// The global peak-RSS gauge handle.
fn peak_rss_gauge() -> Gauge {
    crate::global().gauge(
        crate::names::PEAK_RSS_BYTES,
        "Peak resident set size of this process in bytes (VmHWM).",
        &[],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_parses_on_linux() {
        if !cfg!(target_os = "linux") {
            return;
        }
        // Only parseability and plausibility are asserted: some
        // sandboxed kernels synthesise /proc values, so cross-read
        // monotonicity of VmHWM is not testable here.
        assert!(peak_rss_bytes().expect("Linux exposes VmHWM") > 0);
        assert!(current_rss_bytes().expect("Linux exposes VmRSS") > 0);
    }

    #[test]
    fn sampling_feeds_the_global_gauge() {
        if !cfg!(target_os = "linux") {
            return;
        }
        let sampled = sample_peak_rss();
        if crate::enabled() {
            let v = sampled.expect("enabled sampling returns the value") as f64;
            assert_eq!(peak_rss_gauge().get(), v);
        }
    }
}
