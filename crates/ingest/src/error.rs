//! Typed ingestion errors carrying file and line context.
//!
//! Every loader in this crate reports malformed input as an
//! [`IngestError`] naming the offending file — and, for the line-oriented
//! text formats, the 1-based line number — rather than panicking. Tools
//! ingesting multi-million-line dumps need "kb2.nt:48210: unterminated
//! IRI", not a backtrace.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use remp_kb::KbError;

/// Everything that can go wrong while turning files into knowledge bases.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying I/O operation failed.
    Io {
        /// File (or directory) being accessed.
        path: PathBuf,
        /// The operating-system error.
        error: io::Error,
    },
    /// A line of a text format (N-Triples, CSV, gold TSV) is malformed.
    Syntax {
        /// File being parsed.
        path: PathBuf,
        /// 1-based line number where the record *starts* (a quoted CSV
        /// field may span lines).
        line: u64,
        /// What is wrong with it.
        message: String,
    },
    /// A binary `.rkb` snapshot is corrupt, truncated or incompatible.
    Snapshot {
        /// Snapshot file.
        path: PathBuf,
        /// What is wrong with it.
        message: String,
    },
    /// The decoded knowledge base fails structural validation
    /// ([`remp_kb::Kb::validate`]) — e.g. a relationship triple with a
    /// dangling entity endpoint.
    Kb {
        /// File the KB was decoded from.
        path: PathBuf,
        /// The structural defect.
        error: KbError,
    },
}

impl IngestError {
    pub(crate) fn io(path: &Path, error: io::Error) -> IngestError {
        IngestError::Io { path: path.to_path_buf(), error }
    }

    pub(crate) fn syntax(path: &Path, line: u64, message: impl Into<String>) -> IngestError {
        IngestError::Syntax { path: path.to_path_buf(), line, message: message.into() }
    }

    pub(crate) fn snapshot(path: &Path, message: impl Into<String>) -> IngestError {
        IngestError::Snapshot { path: path.to_path_buf(), message: message.into() }
    }

    /// The file the error points at.
    pub fn path(&self) -> &Path {
        match self {
            IngestError::Io { path, .. }
            | IngestError::Syntax { path, .. }
            | IngestError::Snapshot { path, .. }
            | IngestError::Kb { path, .. } => path,
        }
    }

    /// The 1-based line number, for the line-oriented text formats.
    pub fn line(&self) -> Option<u64> {
        match self {
            IngestError::Syntax { line, .. } => Some(*line),
            _ => None,
        }
    }
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            IngestError::Syntax { path, line, message } => {
                write!(f, "{}:{line}: {message}", path.display())
            }
            IngestError::Snapshot { path, message } => {
                write!(f, "{}: invalid snapshot: {message}", path.display())
            }
            IngestError::Kb { path, error } => {
                write!(f, "{}: invalid knowledge base: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io { error, .. } => Some(error),
            IngestError::Kb { error, .. } => Some(error),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syntax_errors_cite_file_and_line() {
        let err = IngestError::syntax(Path::new("kb1.nt"), 42, "unterminated IRI");
        assert_eq!(err.to_string(), "kb1.nt:42: unterminated IRI");
        assert_eq!(err.line(), Some(42));
        assert_eq!(err.path(), Path::new("kb1.nt"));
    }

    #[test]
    fn io_errors_cite_the_file() {
        let err = IngestError::io(
            Path::new("missing.rkb"),
            io::Error::new(io::ErrorKind::NotFound, "no such file"),
        );
        assert!(err.to_string().starts_with("missing.rkb:"), "{err}");
        assert_eq!(err.line(), None);
    }
}
