//! Shared section-envelope framing for Remp's binary container files.
//!
//! Both the `.rkb` snapshot and the `.rshard` shard file use the same
//! envelope: a 24-byte header (`magic`, `version: u32`, `payload length:
//! u64`, `FNV-1a 64 checksum: u64`, all integers little-endian) followed
//! by a payload of tagged sections, each `tag: u32, length: u64, body`.
//!
//! The module provides the pieces the formats build on:
//!
//! * [`EnvelopeWriter`] — streams sections to any `Write + Seek` sink,
//!   computing the checksum incrementally and patching the header on
//!   [`EnvelopeWriter::finish`]. Peak memory is one section body, never
//!   the whole payload — this is what lets the scale generator write a
//!   million-entity snapshot without holding the KB in memory.
//! * [`EnvelopeReader`] — the section-at-a-time streaming reader.
//!   Sections are yielded in file order as `(tag, body)`; the checksum
//!   is verified incrementally and enforced when the last section has
//!   been drained, so a reader that consumes the whole file gets the
//!   same integrity guarantee as a whole-file decode.
//! * [`ByteCursor`] — the bounds-checked little-endian decoder section
//!   bodies are parsed with; out-of-range reads surface as typed errors,
//!   never panics, and pre-allocations are capped by the bytes actually
//!   remaining so forged counts cannot trigger huge allocations.
//! * `put_*` helpers mirroring the cursor's primitive encodings.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::IngestError;

/// FNV-1a 64 — the dependency-free integrity hash both envelopes use.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Feeds more bytes into a running FNV-1a 64 state.
pub fn fnv1a64_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The FNV-1a 64 initial state (offset basis).
pub const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

// ---- encoding helpers -------------------------------------------------

/// Appends a little-endian `u32`.
pub fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
pub fn put_f64(b: &mut Vec<u8>, v: f64) {
    put_u64(b, v.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, s.len() as u32);
    b.extend_from_slice(s.as_bytes());
}

// ---- writer -----------------------------------------------------------

/// Streams a section envelope to a `Write + Seek` sink.
///
/// Write sections with [`section`](Self::section), then call
/// [`finish`](Self::finish) to patch the payload length and checksum
/// into the header. Dropping the writer without `finish` leaves a file
/// whose header promises zero payload bytes — readers reject it, so a
/// crashed writer can never be mistaken for a complete file.
pub struct EnvelopeWriter<W: Write + Seek> {
    out: BufWriter<W>,
    path: PathBuf,
    payload_len: u64,
    hash: u64,
}

impl EnvelopeWriter<File> {
    /// Creates `path` and writes the (placeholder) header for `magic` /
    /// `version`.
    pub fn create(path: &Path, magic: [u8; 4], version: u32) -> Result<Self, IngestError> {
        let file = File::create(path).map_err(|e| IngestError::io(path, e))?;
        EnvelopeWriter::new(file, path, magic, version)
    }
}

impl<W: Write + Seek> EnvelopeWriter<W> {
    /// Wraps an arbitrary seekable sink (`path` is error context only).
    pub fn new(sink: W, path: &Path, magic: [u8; 4], version: u32) -> Result<Self, IngestError> {
        let mut out = BufWriter::new(sink);
        let header = |out: &mut BufWriter<W>| -> std::io::Result<()> {
            out.write_all(&magic)?;
            out.write_all(&version.to_le_bytes())?;
            out.write_all(&0u64.to_le_bytes())?; // payload length, patched by finish()
            out.write_all(&0u64.to_le_bytes())?; // checksum, patched by finish()
            Ok(())
        };
        header(&mut out).map_err(|e| IngestError::io(path, e))?;
        Ok(EnvelopeWriter { out, path: path.to_path_buf(), payload_len: 0, hash: FNV_SEED })
    }

    /// Appends one `tag` section with `body`, updating the running
    /// checksum. Bodies are framed exactly as the in-memory writer lays
    /// them out, so streamed and buffered files are byte-identical.
    pub fn section(&mut self, tag: u32, body: &[u8]) -> Result<(), IngestError> {
        let mut frame = Vec::with_capacity(12);
        put_u32(&mut frame, tag);
        put_u64(&mut frame, body.len() as u64);
        for chunk in [frame.as_slice(), body] {
            self.hash = fnv1a64_update(self.hash, chunk);
            self.out.write_all(chunk).map_err(|e| IngestError::io(&self.path, e))?;
            self.payload_len += chunk.len() as u64;
        }
        Ok(())
    }

    /// Patches the header with the payload length and checksum, flushes,
    /// and returns the underlying sink.
    pub fn finish(mut self) -> Result<W, IngestError> {
        let err = |e| IngestError::io(&self.path, e);
        self.out.flush().map_err(err)?;
        let mut sink = self
            .out
            .into_inner()
            .map_err(|e| IngestError::io(&self.path, std::io::Error::other(e.to_string())))?;
        sink.seek(SeekFrom::Start(8)).map_err(err)?;
        sink.write_all(&self.payload_len.to_le_bytes()).map_err(err)?;
        sink.write_all(&self.hash.to_le_bytes()).map_err(err)?;
        sink.seek(SeekFrom::End(0)).map_err(err)?;
        sink.flush().map_err(err)?;
        Ok(sink)
    }
}

// ---- reader -----------------------------------------------------------

/// Section-at-a-time streaming reader over an envelope file.
///
/// Memory is bounded by the largest single section, not the file: each
/// [`next_section`](Self::next_section) call reads exactly one section
/// body. The checksum accumulates as sections stream by and is verified
/// when the payload is exhausted — `next_section` returns the final
/// `Ok(None)` only for a file whose checksum matches.
pub struct EnvelopeReader<R: Read> {
    input: R,
    path: PathBuf,
    remaining: u64,
    hash: u64,
    expected_hash: u64,
}

impl EnvelopeReader<BufReader<File>> {
    /// Opens `path` and validates the header against `magic`/`version`.
    pub fn open(path: &Path, magic: [u8; 4], version: u32) -> Result<Self, IngestError> {
        let file = File::open(path).map_err(|e| IngestError::io(path, e))?;
        let meta_len = file.metadata().map_err(|e| IngestError::io(path, e))?.len();
        let reader = EnvelopeReader::new(BufReader::new(file), path, magic, version)?;
        if meta_len != 24 + reader.remaining {
            return Err(IngestError::snapshot(
                path,
                format!(
                    "truncated: header promises {} payload bytes, file has {}",
                    reader.remaining,
                    meta_len.saturating_sub(24)
                ),
            ));
        }
        Ok(reader)
    }
}

impl<R: Read> EnvelopeReader<R> {
    /// Wraps an arbitrary byte source positioned at the header.
    pub fn new(
        mut input: R,
        path: &Path,
        magic: [u8; 4],
        version: u32,
    ) -> Result<Self, IngestError> {
        let fail = |msg: String| IngestError::snapshot(path, msg);
        let mut header = [0u8; 24];
        let mut got = 0;
        while got < header.len() {
            match input.read(&mut header[got..]).map_err(|e| IngestError::io(path, e))? {
                0 => return Err(fail(format!("file is {got} bytes, header needs 24"))),
                n => got += n,
            }
        }
        if header[..4] != magic {
            let kind = if magic == crate::snapshot::MAGIC { ".rkb snapshot" } else { "envelope" };
            return Err(fail(format!("bad magic (not an {kind})")));
        }
        let found = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if found != version {
            return Err(fail(format!("unsupported version {found} (this build reads {version})")));
        }
        let remaining = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let expected_hash = u64::from_le_bytes(header[16..24].try_into().unwrap());
        Ok(EnvelopeReader {
            input,
            path: path.to_path_buf(),
            remaining,
            hash: FNV_SEED,
            expected_hash,
        })
    }

    /// Total payload bytes left to stream.
    pub fn remaining_bytes(&self) -> u64 {
        self.remaining
    }

    fn fill(&mut self, buf: &mut [u8]) -> Result<(), IngestError> {
        if (buf.len() as u64) > self.remaining {
            return Err(IngestError::snapshot(
                &self.path,
                "section truncated or malformed".to_owned(),
            ));
        }
        let mut got = 0;
        while got < buf.len() {
            match self.input.read(&mut buf[got..]).map_err(|e| IngestError::io(&self.path, e))? {
                0 => {
                    return Err(IngestError::snapshot(
                        &self.path,
                        format!(
                            "truncated: header promises {} more payload bytes, hit EOF",
                            self.remaining - got as u64
                        ),
                    ))
                }
                n => got += n,
            }
        }
        self.hash = fnv1a64_update(self.hash, buf);
        self.remaining -= buf.len() as u64;
        Ok(())
    }

    /// Reads the next `(tag, body)` section, or `Ok(None)` once the
    /// payload is exhausted *and* the checksum matches.
    pub fn next_section(&mut self) -> Result<Option<(u32, Vec<u8>)>, IngestError> {
        if self.remaining == 0 {
            if self.hash != self.expected_hash {
                return Err(IngestError::snapshot(
                    &self.path,
                    format!(
                        "checksum mismatch (stored {:#018x}, computed {:#018x})",
                        self.expected_hash, self.hash
                    ),
                ));
            }
            return Ok(None);
        }
        let mut frame = [0u8; 12];
        self.fill(&mut frame)?;
        let tag = u32::from_le_bytes(frame[..4].try_into().unwrap());
        let len = u64::from_le_bytes(frame[4..12].try_into().unwrap());
        if len > self.remaining {
            return Err(IngestError::snapshot(
                &self.path,
                "section truncated or malformed".to_owned(),
            ));
        }
        let mut body = vec![0u8; len as usize];
        self.fill(&mut body)?;
        Ok(Some((tag, body)))
    }
}

// ---- cursor -----------------------------------------------------------

/// Bounds-checked little-endian reader over one byte slice; out-of-range
/// reads become [`IngestError::Snapshot`] citing the file.
pub struct ByteCursor<'a> {
    data: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> ByteCursor<'a> {
    /// Wraps `data` (`path` is error context only).
    pub fn new(data: &'a [u8], path: &'a Path) -> Self {
        ByteCursor { data, pos: 0, path }
    }

    /// True once every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn truncated(&self) -> IngestError {
        IngestError::snapshot(self.path, "section truncated or malformed".to_owned())
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], IngestError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        if end > self.data.len() {
            return Err(self.truncated());
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, IngestError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, IngestError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, IngestError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` stored as its bit pattern.
    pub fn f64(&mut self) -> Result<f64, IngestError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, IngestError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| IngestError::snapshot(self.path, "string is not UTF-8".to_owned()))
    }

    /// Caps a pre-allocation count by how many items of `min_size`
    /// bytes the rest of the section could possibly hold, so a forged
    /// count cannot trigger a huge allocation — the parse then fails
    /// with a truncation error instead.
    pub fn capped(&self, n: usize, min_size: usize) -> usize {
        n.min((self.data.len() - self.pos) / min_size + 1)
    }

    /// Reads a count-prefixed string table.
    pub fn string_table(&mut self) -> Result<Vec<String>, IngestError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(self.capped(n, 4));
        for _ in 0..n {
            out.push(self.string()?);
        }
        self.expect_end()?;
        Ok(out)
    }

    /// Fails unless the cursor consumed the slice exactly.
    pub fn expect_end(&self) -> Result<(), IngestError> {
        if self.done() {
            Ok(())
        } else {
            Err(self.truncated()) // trailing garbage inside a section
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const MAGIC: [u8; 4] = *b"TST\0";

    fn build(sections: &[(u32, &[u8])]) -> Vec<u8> {
        let sink = Cursor::new(Vec::new());
        let mut w = EnvelopeWriter::new(sink, Path::new("t.bin"), MAGIC, 7).unwrap();
        for &(tag, body) in sections {
            w.section(tag, body).unwrap();
        }
        w.finish().unwrap().into_inner()
    }

    #[test]
    fn round_trips_sections_in_order() {
        let data = build(&[(1, b"alpha"), (2, b""), (9, &[0xFF; 300])]);
        let mut r =
            EnvelopeReader::new(Cursor::new(&data[..]), Path::new("t.bin"), MAGIC, 7).unwrap();
        assert_eq!(r.next_section().unwrap(), Some((1, b"alpha".to_vec())));
        assert_eq!(r.next_section().unwrap(), Some((2, Vec::new())));
        assert_eq!(r.next_section().unwrap(), Some((9, vec![0xFF; 300])));
        assert_eq!(r.next_section().unwrap(), None);
    }

    #[test]
    fn corruption_is_detected_on_drain() {
        let mut data = build(&[(1, b"alpha")]);
        let last = data.len() - 1;
        data[last] ^= 0x01;
        let mut r =
            EnvelopeReader::new(Cursor::new(&data[..]), Path::new("t.bin"), MAGIC, 7).unwrap();
        let _ = r.next_section().unwrap();
        let err = r.next_section().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn header_mismatches_are_typed_errors() {
        let data = build(&[]);
        let fail = |data: &[u8], magic, version| {
            EnvelopeReader::new(Cursor::new(data.to_vec()), Path::new("t.bin"), magic, version)
                .err()
                .expect("header mismatch must be rejected")
        };
        let err = fail(&data, *b"NOPE", 7);
        assert!(err.to_string().contains("bad magic"), "{err}");
        let err = fail(&data, MAGIC, 8);
        assert!(err.to_string().contains("unsupported version 7"), "{err}");
        let err = fail(&data[..4], MAGIC, 7);
        assert!(err.to_string().contains("header needs 24"), "{err}");
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let data = build(&[(1, b"alpha")]);
        let cut = &data[..data.len() - 2];
        let mut r = EnvelopeReader::new(Cursor::new(cut), Path::new("t.bin"), MAGIC, 7).unwrap();
        let err = r.next_section().unwrap_err();
        assert!(err.to_string().contains("truncated") || err.to_string().contains("EOF"), "{err}");
    }

    #[test]
    fn unfinished_writer_leaves_a_rejectable_file() {
        // Simulate a crash: header written, finish() never called.
        let sink = Cursor::new(Vec::new());
        let mut w = EnvelopeWriter::new(sink, Path::new("t.bin"), MAGIC, 7).unwrap();
        w.section(1, b"half").unwrap();
        w.out.flush().unwrap();
        let data = std::mem::replace(w.out.get_mut(), Cursor::new(Vec::new())).into_inner();
        // Header says 0 payload bytes but bytes follow: EnvelopeReader::open
        // checks file length; the slice-based reader sees a zero-length
        // payload with a zero checksum that cannot match real sections.
        let mut r =
            EnvelopeReader::new(Cursor::new(&data[..]), Path::new("t.bin"), MAGIC, 7).unwrap();
        // remaining == 0 and hash == FNV_SEED != 0 stored → checksum error.
        let err = r.next_section().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn cursor_primitives_round_trip() {
        let mut b = Vec::new();
        put_u32(&mut b, 42);
        put_u64(&mut b, u64::MAX - 1);
        put_f64(&mut b, -0.5);
        put_str(&mut b, "héllo");
        let mut c = ByteCursor::new(&b, Path::new("t.bin"));
        assert_eq!(c.u32().unwrap(), 42);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.f64().unwrap(), -0.5);
        assert_eq!(c.string().unwrap(), "héllo");
        c.expect_end().unwrap();
    }
}
