//! Streaming loader and writer for a line-oriented N-Triples subset.
//!
//! The supported grammar is one triple per line:
//!
//! ```text
//! <subject-iri> <predicate-iri> <object-iri> .          # relationship
//! <subject-iri> <predicate-iri> "literal" .             # attribute
//! <subject-iri> <predicate-iri> "3.5"^^<…#double> .     # numeric attribute
//! ```
//!
//! Blank lines and `#` comment lines are skipped. Literals support the
//! standard escapes (`\"`, `\\`, `\n`, `\r`, `\t`, `\uXXXX`, `\UXXXXXXXX`,
//! surrogate pairs) and an optional language tag (accepted, ignored).
//! Values are normalized during the scan: literals whose datatype IRI has
//! a numeric XSD suffix become [`Value::Number`], everything else becomes
//! [`Value::Text`]. Triples whose predicate is `rdfs:label` set the
//! subject's entity label; all decisions are made line by line so dumps
//! stream through a constant-size buffer into [`KbBuilder`].
//!
//! Entities are interned on first mention (subject or object position)
//! with a label derived from the IRI's local name, overwritten when the
//! label triple arrives. See `crates/ingest/FORMAT.md` for the full
//! format and round-trip guarantees.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use remp_kb::{EntityId, Kb, KbBuilder, Value};

use crate::{IngestError, LoadedKb};

/// The predicate whose literal object is the entity label (paper §III-A).
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";

/// Datatype IRI written for numeric literals.
pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";

/// Datatype-IRI suffixes normalized to [`Value::Number`] during the scan.
const NUMERIC_SUFFIXES: [&str; 7] =
    ["#double", "#float", "#decimal", "#integer", "#int", "#long", "#short"];

const ATTR_IRI_PREFIX: &str = "urn:remp:attr:";
const REL_IRI_PREFIX: &str = "urn:remp:rel:";

/// The canonical IRI this crate's exporter writes for entity `index`.
pub fn entity_iri(index: usize) -> String {
    format!("urn:remp:e{index}")
}

/// One parsed triple.
#[derive(Debug, PartialEq)]
enum Parsed<'a> {
    /// Blank or comment line.
    Nothing,
    /// `(subject, predicate, object-iri)`.
    Relationship(&'a str, &'a str, &'a str),
    /// `(subject, predicate, value)`.
    Attribute(&'a str, &'a str, Value),
}

/// Loads an N-Triples file into a knowledge base called `kb_name`.
pub fn load_ntriples(path: &Path, kb_name: &str) -> Result<LoadedKb, IngestError> {
    let file = File::open(path).map_err(|e| IngestError::io(path, e))?;
    read_ntriples(BufReader::new(file), path, kb_name)
}

/// Streams N-Triples from any reader (`path` is used for error context).
pub fn read_ntriples(
    mut reader: impl BufRead,
    path: &Path,
    kb_name: &str,
) -> Result<LoadedKb, IngestError> {
    let mut builder = KbBuilder::new(kb_name);
    let mut ids: HashMap<String, EntityId> = HashMap::new();
    let mut external_ids: Vec<String> = Vec::new();
    let mut intern = |iri: &str, builder: &mut KbBuilder| -> EntityId {
        if let Some(&id) = ids.get(iri) {
            return id;
        }
        let id = builder.add_entity(local_name(iri));
        ids.insert(iri.to_owned(), id);
        external_ids.push(iri.to_owned());
        id
    };

    let mut line = String::new();
    let mut lineno = 0u64;
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(|e| IngestError::io(path, e))?;
        if n == 0 {
            break;
        }
        lineno += 1;
        match parse_line(&line).map_err(|msg| IngestError::syntax(path, lineno, msg))? {
            Parsed::Nothing => {}
            Parsed::Relationship(s, p, o) => {
                let subject = intern(s, &mut builder);
                let object = intern(o, &mut builder);
                let rel = builder
                    .add_rel(rel_name_of(p).map_err(|msg| IngestError::syntax(path, lineno, msg))?);
                builder.add_rel_triple(subject, rel, object);
            }
            Parsed::Attribute(s, p, value) => {
                let subject = intern(s, &mut builder);
                if p == RDFS_LABEL {
                    match value {
                        Value::Text(label) => builder.set_label(subject, label),
                        Value::Number(_) => {
                            return Err(IngestError::syntax(
                                path,
                                lineno,
                                "rdfs:label object must be a string literal",
                            ));
                        }
                    }
                } else {
                    let attr = builder.add_attr(
                        attr_name_of(p).map_err(|msg| IngestError::syntax(path, lineno, msg))?,
                    );
                    builder.add_attr_triple(subject, attr, value);
                }
            }
        }
    }
    Ok(LoadedKb { kb: builder.finish(), external_ids })
}

/// Writes `kb` as N-Triples to `path`.
pub fn export_ntriples(kb: &Kb, path: &Path) -> Result<(), IngestError> {
    let file = File::create(path).map_err(|e| IngestError::io(path, e))?;
    let mut out = BufWriter::new(file);
    write_ntriples(kb, &mut out).map_err(|e| IngestError::io(path, e))
}

/// Serializes `kb` as N-Triples.
///
/// The emission order is part of the format contract (FORMAT.md): label
/// triples for every entity in id order, then attribute triples grouped
/// by attribute id, then relationship triples grouped by relationship id.
/// Re-importing therefore reproduces the exact same id assignment, making
/// `Kb → N-Triples → Kb` the identity.
pub fn write_ntriples(kb: &Kb, out: &mut dyn Write) -> io::Result<()> {
    for u in kb.entities() {
        writeln!(
            out,
            "<{}> <{RDFS_LABEL}> \"{}\" .",
            entity_iri(u.index()),
            escape_literal(kb.label(u))
        )?;
    }
    for a in kb.attrs() {
        let pred = format!("{ATTR_IRI_PREFIX}{}", encode_component(kb.attr_name(a)));
        for u in kb.entities() {
            for v in kb.attr_values(u, a) {
                match v {
                    Value::Text(s) => writeln!(
                        out,
                        "<{}> <{pred}> \"{}\" .",
                        entity_iri(u.index()),
                        escape_literal(s)
                    )?,
                    Value::Number(n) => writeln!(
                        out,
                        "<{}> <{pred}> \"{n}\"^^<{XSD_DOUBLE}> .",
                        entity_iri(u.index())
                    )?,
                }
            }
        }
    }
    for r in kb.rels() {
        let pred = format!("{REL_IRI_PREFIX}{}", encode_component(kb.rel_name(r)));
        for u in kb.entities() {
            for &(_, o) in kb.rel_values(u, r) {
                writeln!(
                    out,
                    "<{}> <{pred}> <{}> .",
                    entity_iri(u.index()),
                    entity_iri(o.index())
                )?;
            }
        }
    }
    Ok(())
}

// ---- line parser ------------------------------------------------------

fn parse_line(line: &str) -> Result<Parsed<'_>, String> {
    let mut rest = line.trim_start();
    if rest.is_empty() || rest.starts_with('#') {
        return Ok(Parsed::Nothing);
    }
    let (subject, r) = parse_iri(rest)?;
    rest = r.trim_start();
    let (predicate, r) = parse_iri(rest)?;
    rest = r.trim_start();
    if rest.starts_with('<') {
        let (object, r) = parse_iri(rest)?;
        expect_terminator(r)?;
        Ok(Parsed::Relationship(subject, predicate, object))
    } else if rest.starts_with('"') {
        let (text, datatype, r) = parse_literal(rest)?;
        expect_terminator(r)?;
        let value = match datatype {
            Some(dt) if NUMERIC_SUFFIXES.iter().any(|s| dt.ends_with(s)) => {
                let n: f64 = text
                    .parse()
                    .map_err(|_| format!("invalid numeric literal \"{text}\" for <{dt}>"))?;
                Value::Number(n)
            }
            _ => Value::Text(text),
        };
        Ok(Parsed::Attribute(subject, predicate, value))
    } else if rest.is_empty() {
        Err("expected object term, found end of line".into())
    } else {
        Err(format!("expected object term, found {:?}", rest.chars().next().unwrap()))
    }
}

/// Parses `<iri>` at the start of `s`, returning the IRI and the rest.
fn parse_iri(s: &str) -> Result<(&str, &str), String> {
    let Some(body) = s.strip_prefix('<') else {
        let found = s.chars().next().map_or("end of line".to_owned(), |c| format!("{c:?}"));
        return Err(format!("expected IRI, found {found}"));
    };
    let Some(end) = body.find('>') else {
        return Err("unterminated IRI (missing '>')".into());
    };
    let iri = &body[..end];
    if iri.is_empty() {
        return Err("empty IRI".into());
    }
    if iri.chars().any(|c| c.is_whitespace() || c == '<') {
        return Err(format!("IRI <{iri}> contains whitespace"));
    }
    Ok((iri, &body[end + 1..]))
}

/// Parses a quoted literal (plus optional `@lang` / `^^<datatype>`),
/// returning `(unescaped text, datatype IRI, rest)`.
fn parse_literal(s: &str) -> Result<(String, Option<&str>, &str), String> {
    let body = s.strip_prefix('"').expect("caller checked the opening quote");
    let mut text = String::new();
    let mut chars = body.char_indices();
    let close = loop {
        let Some((i, c)) = chars.next() else {
            return Err("unterminated string literal (missing '\"')".into());
        };
        match c {
            '"' => break i,
            '\\' => {
                let Some((_, esc)) = chars.next() else {
                    return Err("dangling '\\' at end of line".into());
                };
                match esc {
                    '"' => text.push('"'),
                    '\\' => text.push('\\'),
                    'n' => text.push('\n'),
                    'r' => text.push('\r'),
                    't' => text.push('\t'),
                    'u' => text.push(parse_unicode_escape(&mut chars, 4)?),
                    'U' => text.push(parse_unicode_escape(&mut chars, 8)?),
                    other => return Err(format!("unsupported escape '\\{other}'")),
                }
            }
            c => text.push(c),
        }
    };
    let mut rest = &body[close + 1..];
    if let Some(tagged) = rest.strip_prefix('@') {
        // Language tags are accepted and ignored.
        let end =
            tagged.find(|c: char| !(c.is_ascii_alphanumeric() || c == '-')).unwrap_or(tagged.len());
        if end == 0 {
            return Err("empty language tag".into());
        }
        rest = &tagged[end..];
    }
    let mut datatype = None;
    if let Some(dt) = rest.strip_prefix("^^") {
        let (iri, r) = parse_iri(dt)?;
        datatype = Some(iri);
        rest = r;
    }
    Ok((text, datatype, rest))
}

/// Reads `digits` hex digits from the char stream.
fn take_hex(chars: &mut std::str::CharIndices<'_>, digits: usize) -> Result<u32, String> {
    let mut v: u32 = 0;
    for _ in 0..digits {
        let Some((_, c)) = chars.next() else {
            return Err("truncated unicode escape".into());
        };
        let d = c.to_digit(16).ok_or_else(|| format!("bad hex digit {c:?} in escape"))?;
        v = v * 16 + d;
    }
    Ok(v)
}

/// Decodes `\uXXXX` / `\UXXXXXXXX` (with surrogate-pair handling).
fn parse_unicode_escape(
    chars: &mut std::str::CharIndices<'_>,
    digits: usize,
) -> Result<char, String> {
    let mut code = take_hex(chars, digits)?;
    if (0xD800..0xDC00).contains(&code) {
        // High surrogate: a `\uDC00`–`\uDFFF` escape must follow.
        match (chars.next(), chars.next()) {
            (Some((_, '\\')), Some((_, 'u'))) => {}
            _ => return Err("lone high surrogate in unicode escape".into()),
        }
        let low = take_hex(chars, 4)?;
        if !(0xDC00..0xE000).contains(&low) {
            return Err("invalid low surrogate in unicode escape".into());
        }
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    }
    char::from_u32(code).ok_or_else(|| format!("invalid unicode scalar U+{code:X}"))
}

/// After the object term: optional whitespace, `.`, optional whitespace.
fn expect_terminator(s: &str) -> Result<(), String> {
    let rest = s.trim_start();
    let Some(after) = rest.strip_prefix('.') else {
        return Err("missing '.' terminator".into());
    };
    if !after.trim_start().is_empty() {
        return Err(format!("trailing content after '.': {:?}", after.trim()));
    }
    Ok(())
}

// ---- naming -----------------------------------------------------------

/// The local name of an IRI: everything after the last `#`, `/` or `:`.
fn local_name(iri: &str) -> &str {
    let cut = iri.rfind(['#', '/', ':']).map(|i| i + 1).unwrap_or(0);
    if cut >= iri.len() {
        iri
    } else {
        &iri[cut..]
    }
}

fn attr_name_of(pred: &str) -> Result<String, String> {
    decoded_name(pred, ATTR_IRI_PREFIX)
}

fn rel_name_of(pred: &str) -> Result<String, String> {
    decoded_name(pred, REL_IRI_PREFIX)
}

/// The schema-element name for a predicate IRI: our own `urn:remp:…`
/// IRIs percent-decode back to the exact original name; foreign IRIs use
/// their local name.
fn decoded_name(pred: &str, prefix: &str) -> Result<String, String> {
    match pred.strip_prefix(prefix) {
        Some(enc) => decode_component(enc)
            .ok_or_else(|| format!("invalid percent-encoding in predicate <{pred}>")),
        None => Ok(local_name(pred).to_owned()),
    }
}

// ---- escaping ---------------------------------------------------------

/// Escapes a literal for emission between double quotes.
fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Percent-encodes a schema-element name into an IRI component.
fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Inverse of [`encode_component`]; `None` on malformed input.
fn decode_component(s: &str) -> Option<String> {
    let mut bytes = Vec::with_capacity(s.len());
    let mut iter = s.bytes();
    while let Some(b) = iter.next() {
        if b == b'%' {
            let hi = (iter.next()? as char).to_digit(16)?;
            let lo = (iter.next()? as char).to_digit(16)?;
            bytes.push((hi * 16 + lo) as u8);
        } else {
            bytes.push(b);
        }
    }
    String::from_utf8(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_str(text: &str) -> Result<LoadedKb, IngestError> {
        read_ntriples(text.as_bytes(), Path::new("test.nt"), "t")
    }

    #[test]
    fn parses_the_three_triple_kinds() {
        let loaded = load_str(concat!(
            "# a comment\n",
            "\n",
            "<urn:a> <http://www.w3.org/2000/01/rdf-schema#label> \"Ada\" .\n",
            "<urn:a> <urn:remp:attr:born> \"1815\"^^<http://www.w3.org/2001/XMLSchema#double> .\n",
            "<urn:a> <urn:remp:attr:note> \"first \\\"programmer\\\"\" .\n",
            "<urn:a> <urn:remp:rel:knows> <urn:b> .\n",
        ))
        .unwrap();
        let kb = &loaded.kb;
        assert_eq!(kb.num_entities(), 2);
        assert_eq!(kb.label(EntityId(0)), "Ada");
        assert_eq!(kb.label(EntityId(1)), "b", "object label defaults to the IRI local name");
        assert_eq!(kb.num_attr_triples(), 2);
        assert_eq!(kb.num_rel_triples(), 1);
        assert_eq!(loaded.external_ids, vec!["urn:a".to_owned(), "urn:b".to_owned()]);
        let born = kb.attrs().find(|&a| kb.attr_name(a) == "born").unwrap();
        assert_eq!(kb.attr_values(EntityId(0), born).next(), Some(&Value::number(1815.0)));
    }

    #[test]
    fn label_may_arrive_after_first_mention() {
        let loaded = load_str(concat!(
            "<urn:a> <urn:remp:rel:knows> <urn:b> .\n",
            "<urn:b> <http://www.w3.org/2000/01/rdf-schema#label> \"Babbage\" .\n",
        ))
        .unwrap();
        assert_eq!(loaded.kb.label(EntityId(1)), "Babbage");
    }

    #[test]
    fn language_tags_are_ignored() {
        let loaded = load_str("<urn:a> <urn:remp:attr:name> \"Wien\"@de .\n").unwrap();
        assert_eq!(loaded.kb.num_attr_triples(), 1);
    }

    #[test]
    fn errors_carry_the_line_number() {
        let cases: &[(&str, &str)] = &[
            ("<urn:a> <urn:p> <urn:b>\n", "missing '.'"),
            ("<urn:a> <urn:p \"x\" .\n", "unterminated IRI"),
            ("<urn:a <urn:p> <urn:b> .\n", "whitespace"),
            ("<urn:a> <urn:p> \"x .\n", "unterminated string"),
            ("<urn:a> <urn:p> \"x\\q\" .\n", "unsupported escape"),
            ("<urn:a> <urn:p> \"x\" . extra\n", "trailing content"),
            ("<urn:a> <urn:p> 42 .\n", "expected object term"),
            (
                "<urn:a> <urn:p> \"x\"^^<http://www.w3.org/2001/XMLSchema#double> .\n",
                "invalid numeric literal",
            ),
        ];
        for (bad, needle) in cases {
            let text = format!("<urn:ok> <urn:remp:attr:a> \"fine\" .\n{bad}");
            let err = load_str(&text).unwrap_err();
            assert_eq!(err.line(), Some(2), "{bad:?} → {err}");
            assert!(err.to_string().contains(needle), "{bad:?} → {err}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let loaded =
            load_str("<urn:a> <urn:remp:attr:x> \"caf\\u00E9 \\uD83D\\uDE00 \\U0001F680\" .\n")
                .unwrap();
        let a = loaded.kb.attrs().next().unwrap();
        let v: Vec<_> = loaded.kb.attr_values(EntityId(0), a).collect();
        assert_eq!(v, vec![&Value::text("café 😀 🚀")]);
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        for bad in ["\"\\uD800\"", "\"\\uD800\\u0041\"", "\"\\uDC00x\""] {
            let text = format!("<urn:a> <urn:remp:attr:x> {bad} .\n");
            assert!(load_str(&text).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn round_trip_preserves_the_kb_exactly() {
        let mut b = KbBuilder::new("t");
        let a = b.add_entity("Ada \"the\" first\nline2");
        let c = b.add_entity("");
        let z = b.add_attr("zeta attr");
        let y = b.add_attr("alpha");
        let r = b.add_rel("knows / likes");
        b.add_attr_triple(a, z, Value::text("x\ty"));
        b.add_attr_triple(a, y, Value::number(-0.0));
        b.add_attr_triple(c, y, Value::number(f64::INFINITY));
        b.add_rel_triple(a, r, c);
        let kb = b.finish();

        let mut buf = Vec::new();
        write_ntriples(&kb, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let reloaded = read_ntriples(text.as_bytes(), Path::new("rt.nt"), "t").unwrap();
        assert_eq!(reloaded.kb, kb);
    }

    #[test]
    fn component_encoding_round_trips() {
        for s in ["plain", "with space", "ü%#/:\\\"", ""] {
            assert_eq!(decode_component(&encode_component(s)).as_deref(), Some(s));
        }
        assert_eq!(decode_component("%zz"), None);
        assert_eq!(decode_component("%e2"), None, "truncated UTF-8 must not decode");
    }

    #[test]
    fn local_names() {
        assert_eq!(local_name("http://x.org/ns#born"), "born");
        assert_eq!(local_name("urn:remp:e7"), "e7");
        assert_eq!(local_name("plain"), "plain");
        assert_eq!(local_name("trailing/"), "trailing/");
    }
}
