//! File ingestion for Remp: the path from knowledge-base dumps on disk
//! to running crowd campaigns.
//!
//! The paper evaluates on real KBs up to 15.1 M entities (Table II);
//! this crate turns files into the [`Kb`]s the pipeline
//! consumes:
//!
//! * [`ntriples`] — streaming loader/writer for a line-oriented
//!   N-Triples subset (`.nt`), with string interning and value
//!   normalization during the scan;
//! * [`csv`] — loader/writer for entity/attribute/relationship CSV
//!   tables;
//! * [`gold`] — gold-standard alignment (reference matches) TSV, the
//!   hidden truth simulated crowds answer from;
//! * [`snapshot`] — the versioned `.rkb` binary snapshot: parse a dump
//!   once, load it back in milliseconds with zero re-parsing;
//! * [`dataset`] — format auto-detection, [`FileDataset`] (two KBs +
//!   gold) and the preset exporter that generates loadable fixtures.
//!
//! All parsing and encoding is dependency-free, and every malformed
//! input is a typed [`IngestError`] carrying file and line context —
//! never a panic. The `rempctl` binary (in the root `remp` package, so
//! it can also reach the `remp-serve` campaign server) chains the
//! pieces: `export` → `import` → `inspect` → `run` | `serve` | `drive`.

pub mod csv;
pub mod dataset;
mod error;
pub mod framing;
pub mod gold;
pub mod ntriples;
pub mod snapshot;

use std::collections::HashMap;

use remp_kb::{EntityId, Kb};

pub use dataset::{export_dataset, load_kb, ExportFormat, ExportPaths, FileDataset, KbFormat};
pub use error::IngestError;
pub use gold::load_gold;
pub use ntriples::load_ntriples;
pub use snapshot::{
    encode_snapshot, load_snapshot, snapshot_stats, write_snapshot, RkbSections, SnapshotWriter,
    SNAPSHOT_VERSION,
};

/// A knowledge base loaded from disk, together with the external
/// identifiers (IRIs, CSV ids) its entities had in the source files.
///
/// The identifier table is what keeps gold alignments resolvable: a
/// `gold.tsv` names entities by their external ids, and snapshots
/// preserve the table so alignments keep working after text files are
/// converted to `.rkb`.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadedKb {
    /// The knowledge base.
    pub kb: Kb,
    /// One external identifier per entity, indexed by entity id.
    pub external_ids: Vec<String>,
}

impl LoadedKb {
    /// Builds the external-id → entity lookup used by gold loading.
    pub fn id_map(&self) -> HashMap<&str, EntityId> {
        self.external_ids
            .iter()
            .enumerate()
            .map(|(i, id)| (id.as_str(), EntityId::from_index(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_kb::KbBuilder;

    #[test]
    fn id_map_inverts_the_table() {
        let mut b = KbBuilder::new("t");
        b.add_entity("x");
        b.add_entity("y");
        let loaded =
            LoadedKb { kb: b.finish(), external_ids: vec!["urn:x".to_owned(), "urn:y".to_owned()] };
        let map = loaded.id_map();
        assert_eq!(map["urn:x"], EntityId(0));
        assert_eq!(map["urn:y"], EntityId(1));
    }
}
