//! Streaming loader and writer for CSV entity/attribute/relationship
//! tables.
//!
//! A CSV-backed knowledge base is a *directory* holding three files:
//!
//! | file | header | rows |
//! |---|---|---|
//! | `entities.csv` | `id,label` | one per entity, ids unique |
//! | `attributes.csv` | `entity,attribute,kind,value` | `kind` ∈ `text` \| `number` |
//! | `relationships.csv` | `subject,relationship,object` | endpoints must be declared ids |
//!
//! Quoting follows RFC 4180: fields containing `,`, `"`, or newlines are
//! quoted with `"`, embedded quotes doubled; quoted fields may span
//! lines. Rows referencing an entity id not declared in `entities.csv`
//! are typed errors citing file and line — the text-format counterpart of
//! the dangling-endpoint check [`remp_kb::Kb::validate`] performs on
//! binary snapshots.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use remp_kb::{EntityId, Kb, KbBuilder, Value};

use crate::{IngestError, LoadedKb};

/// File names inside a CSV knowledge-base directory.
pub const ENTITIES_FILE: &str = "entities.csv";
/// See [`ENTITIES_FILE`].
pub const ATTRIBUTES_FILE: &str = "attributes.csv";
/// See [`ENTITIES_FILE`].
pub const RELATIONSHIPS_FILE: &str = "relationships.csv";

/// The canonical entity id this crate's CSV exporter writes for `index`.
pub fn csv_entity_id(index: usize) -> String {
    format!("e{index}")
}

// ---- record-level reader ----------------------------------------------

/// A streaming CSV record reader tracking record-start line numbers.
struct CsvReader<R> {
    reader: R,
    path: PathBuf,
    /// 1-based number of the *next* line to be read.
    next_line: u64,
    buf: String,
}

impl<R: BufRead> CsvReader<R> {
    fn new(reader: R, path: &Path) -> Self {
        CsvReader { reader, path: path.to_path_buf(), next_line: 1, buf: String::new() }
    }

    /// Reads the next record, returning `(start line, fields)`.
    ///
    /// Empty lines are skipped. A quoted field may span multiple physical
    /// lines; errors cite the line the record started on.
    fn next_record(&mut self) -> Result<Option<(u64, Vec<String>)>, IngestError> {
        loop {
            self.buf.clear();
            let n =
                self.reader.read_line(&mut self.buf).map_err(|e| IngestError::io(&self.path, e))?;
            if n == 0 {
                return Ok(None);
            }
            let start = self.next_line;
            self.next_line += 1;
            strip_newline(&mut self.buf);
            if self.buf.is_empty() {
                continue;
            }
            return Ok(Some((start, self.parse_record(start)?)));
        }
    }

    /// Parses the record in `self.buf`, pulling more lines while inside
    /// an open quoted field.
    fn parse_record(&mut self, start: u64) -> Result<Vec<String>, IngestError> {
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut pos = 0usize; // byte offset into self.buf
        loop {
            let rest = &self.buf[pos..];
            let mut chars = rest.char_indices();
            match chars.next() {
                None => {
                    fields.push(std::mem::take(&mut field));
                    return Ok(fields);
                }
                Some((_, ',')) => {
                    fields.push(std::mem::take(&mut field));
                    pos += 1;
                }
                Some((_, '"')) => {
                    pos += 1;
                    self.consume_quoted(&mut field, &mut pos, start)?;
                    // After the closing quote: ',' or end of record.
                    match self.buf[pos..].chars().next() {
                        None => {
                            fields.push(std::mem::take(&mut field));
                            return Ok(fields);
                        }
                        Some(',') => {
                            fields.push(std::mem::take(&mut field));
                            pos += 1;
                        }
                        Some(c) => {
                            return Err(IngestError::syntax(
                                &self.path,
                                start,
                                format!("unexpected {c:?} after closing quote"),
                            ));
                        }
                    }
                }
                Some(_) => {
                    // Raw field: up to the next comma; quotes are illegal.
                    let end = rest.find(',').unwrap_or(rest.len());
                    let raw = &rest[..end];
                    if raw.contains('"') {
                        return Err(IngestError::syntax(
                            &self.path,
                            start,
                            "bare '\"' inside unquoted field (quote the whole field)",
                        ));
                    }
                    field.push_str(raw);
                    pos += end;
                }
            }
        }
    }

    /// Consumes a quoted field body starting at `self.buf[*pos]`,
    /// reading further physical lines as needed.
    fn consume_quoted(
        &mut self,
        field: &mut String,
        pos: &mut usize,
        start: u64,
    ) -> Result<(), IngestError> {
        loop {
            let rest = &self.buf[*pos..];
            match rest.find('"') {
                Some(q) => {
                    field.push_str(&rest[..q]);
                    *pos += q + 1;
                    if self.buf[*pos..].starts_with('"') {
                        field.push('"'); // doubled quote
                        *pos += 1;
                    } else {
                        return Ok(()); // closing quote
                    }
                }
                None => {
                    // The field continues on the next physical line.
                    field.push_str(rest);
                    field.push('\n');
                    *pos = self.buf.len();
                    let mut next = String::new();
                    let n = self
                        .reader
                        .read_line(&mut next)
                        .map_err(|e| IngestError::io(&self.path, e))?;
                    if n == 0 {
                        return Err(IngestError::syntax(
                            &self.path,
                            start,
                            "unterminated quoted field at end of file",
                        ));
                    }
                    self.next_line += 1;
                    strip_newline(&mut next);
                    self.buf.push_str(&next);
                }
            }
        }
    }
}

fn strip_newline(s: &mut String) {
    if s.ends_with('\n') {
        s.pop();
    }
    if s.ends_with('\r') {
        s.pop();
    }
}

/// Writes one CSV record with RFC 4180 quoting.
fn write_record(out: &mut dyn Write, fields: &[&str]) -> io::Result<()> {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            write!(out, ",")?;
        }
        if f.contains(['"', ',', '\n', '\r']) {
            write!(out, "\"{}\"", f.replace('"', "\"\""))?;
        } else {
            write!(out, "{f}")?;
        }
    }
    writeln!(out)
}

// ---- knowledge-base loader --------------------------------------------

/// Loads a CSV knowledge-base directory into a KB called `kb_name`.
pub fn load_csv_kb(dir: &Path, kb_name: &str) -> Result<LoadedKb, IngestError> {
    let mut builder = KbBuilder::new(kb_name);
    let mut ids: HashMap<String, EntityId> = HashMap::new();
    let mut external_ids: Vec<String> = Vec::new();

    // entities.csv — declares every entity; ids must be unique.
    let path = dir.join(ENTITIES_FILE);
    let mut reader = open(&path)?;
    expect_header(&mut reader, &path, &["id", "label"])?;
    while let Some((line, fields)) = reader.next_record()? {
        let [id, label] = expect_fields::<2>(&path, line, &fields)?;
        if ids.contains_key(id) {
            return Err(IngestError::syntax(&path, line, format!("duplicate entity id {id:?}")));
        }
        let entity = builder.add_entity(label);
        ids.insert(id.to_owned(), entity);
        external_ids.push(id.to_owned());
    }

    // attributes.csv — values normalized by the `kind` column.
    let path = dir.join(ATTRIBUTES_FILE);
    let mut reader = open(&path)?;
    expect_header(&mut reader, &path, &["entity", "attribute", "kind", "value"])?;
    while let Some((line, fields)) = reader.next_record()? {
        let [id, attr, kind, value] = expect_fields::<4>(&path, line, &fields)?;
        let entity = lookup(&ids, id, &path, line)?;
        let value = match kind {
            "text" => Value::text(value),
            "number" => Value::number(value.parse().map_err(|_| {
                IngestError::syntax(&path, line, format!("invalid number {value:?}"))
            })?),
            other => {
                return Err(IngestError::syntax(
                    &path,
                    line,
                    format!("unknown value kind {other:?} (expected \"text\" or \"number\")"),
                ));
            }
        };
        let attr = builder.add_attr(attr);
        builder.add_attr_triple(entity, attr, value);
    }

    // relationships.csv — endpoints must be declared entities.
    let path = dir.join(RELATIONSHIPS_FILE);
    let mut reader = open(&path)?;
    expect_header(&mut reader, &path, &["subject", "relationship", "object"])?;
    while let Some((line, fields)) = reader.next_record()? {
        let [subject, rel, object] = expect_fields::<3>(&path, line, &fields)?;
        let subject = lookup(&ids, subject, &path, line)?;
        let object = lookup(&ids, object, &path, line)?;
        let rel = builder.add_rel(rel);
        builder.add_rel_triple(subject, rel, object);
    }

    Ok(LoadedKb { kb: builder.finish(), external_ids })
}

fn open(path: &Path) -> Result<CsvReader<BufReader<File>>, IngestError> {
    let file = File::open(path).map_err(|e| IngestError::io(path, e))?;
    Ok(CsvReader::new(BufReader::new(file), path))
}

fn expect_header<R: BufRead>(
    reader: &mut CsvReader<R>,
    path: &Path,
    expected: &[&str],
) -> Result<(), IngestError> {
    let Some((line, fields)) = reader.next_record()? else {
        return Err(IngestError::syntax(path, 1, "missing header row"));
    };
    if fields != expected {
        return Err(IngestError::syntax(
            path,
            line,
            format!("bad header {fields:?}, expected {expected:?}"),
        ));
    }
    Ok(())
}

fn expect_fields<'a, const N: usize>(
    path: &Path,
    line: u64,
    fields: &'a [String],
) -> Result<[&'a str; N], IngestError> {
    if fields.len() != N {
        return Err(IngestError::syntax(
            path,
            line,
            format!("expected {N} fields, found {}", fields.len()),
        ));
    }
    let mut out = [""; N];
    for (o, f) in out.iter_mut().zip(fields) {
        *o = f.as_str();
    }
    Ok(out)
}

fn lookup(
    ids: &HashMap<String, EntityId>,
    id: &str,
    path: &Path,
    line: u64,
) -> Result<EntityId, IngestError> {
    ids.get(id).copied().ok_or_else(|| {
        IngestError::syntax(
            path,
            line,
            format!("reference to undeclared entity id {id:?} (not in {ENTITIES_FILE})"),
        )
    })
}

// ---- knowledge-base writer --------------------------------------------

/// Writes `kb` as a CSV knowledge-base directory (created if missing).
///
/// Row order mirrors the N-Triples writer's contract: entities in id
/// order, attribute rows grouped by attribute id, relationship rows
/// grouped by relationship id — so re-importing reproduces the exact
/// same id assignment.
pub fn export_csv_kb(kb: &Kb, dir: &Path) -> Result<(), IngestError> {
    fs::create_dir_all(dir).map_err(|e| IngestError::io(dir, e))?;
    let create = |name: &str| -> Result<(BufWriter<File>, PathBuf), IngestError> {
        let path = dir.join(name);
        let file = File::create(&path).map_err(|e| IngestError::io(&path, e))?;
        Ok((BufWriter::new(file), path))
    };
    let fail = |path: &Path, e: io::Error| IngestError::io(path, e);

    let (mut out, path) = create(ENTITIES_FILE)?;
    write_record(&mut out, &["id", "label"]).map_err(|e| fail(&path, e))?;
    for u in kb.entities() {
        write_record(&mut out, &[&csv_entity_id(u.index()), kb.label(u)])
            .map_err(|e| fail(&path, e))?;
    }

    let (mut out, path) = create(ATTRIBUTES_FILE)?;
    write_record(&mut out, &["entity", "attribute", "kind", "value"])
        .map_err(|e| fail(&path, e))?;
    for a in kb.attrs() {
        for u in kb.entities() {
            for v in kb.attr_values(u, a) {
                let (kind, value) = match v {
                    Value::Text(s) => ("text", s.clone()),
                    Value::Number(n) => ("number", format!("{n}")),
                };
                write_record(&mut out, &[&csv_entity_id(u.index()), kb.attr_name(a), kind, &value])
                    .map_err(|e| fail(&path, e))?;
            }
        }
    }

    let (mut out, path) = create(RELATIONSHIPS_FILE)?;
    write_record(&mut out, &["subject", "relationship", "object"]).map_err(|e| fail(&path, e))?;
    for r in kb.rels() {
        for u in kb.entities() {
            for &(_, o) in kb.rel_values(u, r) {
                write_record(
                    &mut out,
                    &[&csv_entity_id(u.index()), kb.rel_name(r), &csv_entity_id(o.index())],
                )
                .map_err(|e| fail(&path, e))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(text: &str) -> Result<Vec<(u64, Vec<String>)>, IngestError> {
        let mut reader = CsvReader::new(text.as_bytes(), Path::new("t.csv"));
        let mut out = Vec::new();
        while let Some(rec) = reader.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }

    #[test]
    fn plain_records() {
        let recs = records("a,b,c\n\nx,,z\n").unwrap();
        assert_eq!(
            recs,
            vec![
                (1, vec!["a".into(), "b".into(), "c".into()]),
                (3, vec!["x".into(), "".into(), "z".into()]),
            ]
        );
    }

    #[test]
    fn quoted_fields_with_embedded_everything() {
        let recs = records("\"a,b\",\"say \"\"hi\"\"\",\"two\nlines\"\nnext,1,2\n").unwrap();
        assert_eq!(recs[0].1, vec!["a,b".to_owned(), "say \"hi\"".into(), "two\nlines".into()]);
        assert_eq!(recs[1], (3, vec!["next".into(), "1".into(), "2".into()]));
    }

    #[test]
    fn csv_errors_cite_the_record_start_line() {
        let err = records("ok,row\nbad,\"unterminated\n").unwrap_err();
        assert_eq!(err.line(), Some(2), "{err}");
        let err = records("ok\n\"x\"y\n").unwrap_err();
        assert_eq!(err.line(), Some(2), "{err}");
        assert!(err.to_string().contains("closing quote"), "{err}");
        let err = records("field\"with quote\n").unwrap_err();
        assert_eq!(err.line(), Some(1), "{err}");
    }

    fn write_files(dir: &Path, entities: &str, attrs: &str, rels: &str) {
        fs::create_dir_all(dir).unwrap();
        fs::write(dir.join(ENTITIES_FILE), entities).unwrap();
        fs::write(dir.join(ATTRIBUTES_FILE), attrs).unwrap();
        fs::write(dir.join(RELATIONSHIPS_FILE), rels).unwrap();
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("remp-csv-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn loads_a_tiny_kb() {
        let dir = tmp("load");
        write_files(
            &dir,
            "id,label\np1,Ada\np2,\"Babbage, Charles\"\n",
            "entity,attribute,kind,value\np1,born,number,1815\np1,note,text,analyst\n",
            "subject,relationship,object\np1,knows,p2\n",
        );
        let loaded = load_csv_kb(&dir, "t").unwrap();
        assert_eq!(loaded.kb.num_entities(), 2);
        assert_eq!(loaded.kb.label(EntityId(1)), "Babbage, Charles");
        assert_eq!(loaded.kb.num_attr_triples(), 2);
        assert_eq!(loaded.kb.num_rel_triples(), 1);
        assert_eq!(loaded.external_ids, vec!["p1".to_owned(), "p2".to_owned()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undeclared_entity_reference_is_a_typed_error() {
        let dir = tmp("dangling");
        write_files(
            &dir,
            "id,label\np1,Ada\n",
            "entity,attribute,kind,value\n",
            "subject,relationship,object\np1,knows,ghost\n",
        );
        let err = load_csv_kb(&dir, "t").unwrap_err();
        assert_eq!(err.line(), Some(2), "{err}");
        assert!(err.to_string().contains("ghost"), "{err}");
        assert!(err.path().ends_with(RELATIONSHIPS_FILE), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_rows_are_typed_errors() {
        let dir = tmp("bad");
        write_files(
            &dir,
            "id,label\np1,Ada\np1,Again\n",
            "entity,attribute,kind,value\n",
            "subject,relationship,object\n",
        );
        let err = load_csv_kb(&dir, "t").unwrap_err();
        assert_eq!(err.line(), Some(3));
        assert!(err.to_string().contains("duplicate"), "{err}");

        write_files(
            &dir,
            "id,label\np1,Ada\n",
            "entity,attribute,kind,value\np1,born,year,1815\n",
            "subject,relationship,object\n",
        );
        let err = load_csv_kb(&dir, "t").unwrap_err();
        assert!(err.to_string().contains("unknown value kind"), "{err}");

        write_files(
            &dir,
            "id,label\np1,Ada\n",
            "entity,attribute,kind,value\np1,born,number,unparseable\n",
            "subject,relationship,object\n",
        );
        let err = load_csv_kb(&dir, "t").unwrap_err();
        assert!(err.to_string().contains("invalid number"), "{err}");

        write_files(&dir, "wrong,header\n", "", "");
        let err = load_csv_kb(&dir, "t").unwrap_err();
        assert!(err.to_string().contains("bad header"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn round_trip_preserves_the_kb_exactly() {
        let mut b = KbBuilder::new("t");
        let a = b.add_entity("comma, quote \" and\nnewline");
        let c = b.add_entity("plain");
        let at = b.add_attr("weird,attr\"name");
        let r = b.add_rel("rel,name");
        b.add_attr_triple(a, at, Value::text("v1"));
        b.add_attr_triple(c, at, Value::number(2.5));
        b.add_rel_triple(c, r, a);
        let kb = b.finish();

        let dir = tmp("roundtrip");
        export_csv_kb(&kb, &dir).unwrap();
        let reloaded = load_csv_kb(&dir, "t").unwrap();
        assert_eq!(reloaded.kb, kb);
        assert_eq!(reloaded.external_ids, vec!["e0".to_owned(), "e1".to_owned()]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
