//! Loader/writer for gold-standard entity alignments (reference matches).
//!
//! The format is two-column TSV: each line holds the external identifiers
//! of one matched pair — the identifiers *as used in the two KB files*
//! (IRIs for N-Triples, ids for CSV; snapshots preserve them). Blank
//! lines and `#` comments are skipped. Loading resolves identifiers
//! through the [`LoadedKb`](crate::LoadedKb) id maps, so a pair naming an
//! unknown entity is a typed error with file and line.

use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use remp_kb::EntityId;

use crate::IngestError;

/// Loads a gold alignment, resolving external ids through the two maps.
pub fn load_gold(
    path: &Path,
    ids1: &HashMap<&str, EntityId>,
    ids2: &HashMap<&str, EntityId>,
) -> Result<HashSet<(EntityId, EntityId)>, IngestError> {
    let file = File::open(path).map_err(|e| IngestError::io(path, e))?;
    read_gold(BufReader::new(file), path, ids1, ids2)
}

/// Streams a gold alignment from any reader (`path` is error context).
pub fn read_gold(
    reader: impl BufRead,
    path: &Path,
    ids1: &HashMap<&str, EntityId>,
    ids2: &HashMap<&str, EntityId>,
) -> Result<HashSet<(EntityId, EntityId)>, IngestError> {
    let mut gold = HashSet::new();
    for (i, line) in reader.lines().enumerate() {
        let lineno = i as u64 + 1;
        let mut line = line.map_err(|e| IngestError::io(path, e))?;
        if line.ends_with('\r') {
            line.pop(); // CRLF endings, as the KB loaders tolerate
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let Some((left, right)) = line.split_once('\t') else {
            return Err(IngestError::syntax(
                path,
                lineno,
                "expected two tab-separated entity identifiers",
            ));
        };
        if right.contains('\t') {
            return Err(IngestError::syntax(path, lineno, "more than two columns"));
        }
        let resolve = |id: &str,
                       ids: &HashMap<&str, EntityId>,
                       side: &str|
         -> Result<EntityId, IngestError> {
            ids.get(id).copied().ok_or_else(|| {
                IngestError::syntax(path, lineno, format!("unknown {side} entity id {id:?}"))
            })
        };
        gold.insert((resolve(left, ids1, "KB1")?, resolve(right, ids2, "KB2")?));
    }
    Ok(gold)
}

/// Writes a gold alignment using the supplied external-id tables
/// (indexed by entity id), sorted for deterministic output.
pub fn export_gold(
    gold: &HashSet<(EntityId, EntityId)>,
    ids1: &[String],
    ids2: &[String],
    path: &Path,
) -> Result<(), IngestError> {
    let file = File::create(path).map_err(|e| IngestError::io(path, e))?;
    let mut out = BufWriter::new(file);
    write_gold(gold, ids1, ids2, &mut out).map_err(|e| IngestError::io(path, e))
}

/// See [`export_gold`].
pub fn write_gold(
    gold: &HashSet<(EntityId, EntityId)>,
    ids1: &[String],
    ids2: &[String],
    out: &mut dyn Write,
) -> io::Result<()> {
    let mut pairs: Vec<_> = gold.iter().copied().collect();
    pairs.sort_unstable();
    for (u1, u2) in pairs {
        writeln!(out, "{}\t{}", ids1[u1.index()], ids2[u2.index()])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maps() -> (HashMap<&'static str, EntityId>, HashMap<&'static str, EntityId>) {
        let ids1 = HashMap::from([("urn:a", EntityId(0)), ("urn:b", EntityId(1))]);
        let ids2 = HashMap::from([("x", EntityId(0)), ("y", EntityId(1))]);
        (ids1, ids2)
    }

    #[test]
    fn loads_pairs_and_skips_comments() {
        let (ids1, ids2) = maps();
        let gold = read_gold(
            "# comment\n\nurn:a\tx\nurn:b\ty\n".as_bytes(),
            Path::new("gold.tsv"),
            &ids1,
            &ids2,
        )
        .unwrap();
        assert_eq!(gold, HashSet::from([(EntityId(0), EntityId(0)), (EntityId(1), EntityId(1))]));
    }

    #[test]
    fn crlf_line_endings_are_tolerated() {
        let (ids1, ids2) = maps();
        let gold =
            read_gold("urn:a\tx\r\nurn:b\ty\r\n".as_bytes(), Path::new("gold.tsv"), &ids1, &ids2)
                .unwrap();
        assert_eq!(gold.len(), 2);
    }

    #[test]
    fn unknown_ids_and_bad_columns_cite_the_line() {
        let (ids1, ids2) = maps();
        let err =
            read_gold("urn:a\tx\nurn:ghost\ty\n".as_bytes(), Path::new("gold.tsv"), &ids1, &ids2)
                .unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert!(err.to_string().contains("urn:ghost"), "{err}");

        let err = read_gold("no-tabs-here\n".as_bytes(), Path::new("gold.tsv"), &ids1, &ids2)
            .unwrap_err();
        assert_eq!(err.line(), Some(1));

        let err =
            read_gold("urn:a\tx\ty\n".as_bytes(), Path::new("gold.tsv"), &ids1, &ids2).unwrap_err();
        assert!(err.to_string().contains("more than two columns"), "{err}");
    }

    #[test]
    fn write_then_read_round_trips() {
        let (ids1, ids2) = maps();
        let gold = HashSet::from([(EntityId(1), EntityId(0)), (EntityId(0), EntityId(1))]);
        let table1 = vec!["urn:a".to_owned(), "urn:b".to_owned()];
        let table2 = vec!["x".to_owned(), "y".to_owned()];
        let mut buf = Vec::new();
        write_gold(&gold, &table1, &table2, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "urn:a\ty\nurn:b\tx\n", "sorted deterministic output");
        let reloaded = read_gold(text.as_bytes(), Path::new("g"), &ids1, &ids2).unwrap();
        assert_eq!(reloaded, gold);
    }
}
