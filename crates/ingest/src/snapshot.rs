//! The versioned `.rkb` binary knowledge-base snapshot.
//!
//! Multi-million-triple dumps should be parsed once: `rempctl import`
//! converts text to a snapshot, and every later run loads the snapshot
//! in milliseconds. The file stores the *frozen* [`Kb`] representation —
//! adjacency tables already grouped and sorted — so loading is a single
//! streaming scan plus [`Kb::from_parts`]'s linear validation sweep: no
//! tokenizing, no re-sorting, no re-interning.
//!
//! Layout (all integers little-endian; see FORMAT.md for the contract):
//!
//! ```text
//! magic  b"RKB\0"            4 bytes
//! version u32                this build writes 1, reads exactly 1
//! payload length u64         integrity: must match the file size
//! checksum u64               FNV-1a 64 over the payload bytes
//! payload                    length-prefixed sections
//! ```
//!
//! Each section is `tag: u32, length: u64, body`. All eight section tags
//! are required in version 1; an unknown tag is an error (format changes
//! bump the version). Corruption — bad magic, truncation, checksum
//! mismatch, dangling ids — surfaces as a typed [`IngestError`], never a
//! panic.
//!
//! Two access grains are provided:
//!
//! * [`load_snapshot`] / [`decode_snapshot`] — the whole-KB decode.
//!   Loading streams the file section-at-a-time through [`RkbSections`],
//!   so peak transient memory is one section body, not the file.
//! * [`RkbSections`] — the raw section iterator for tools that never
//!   need the full [`Kb`]: [`snapshot_stats`] computes Table II-style
//!   statistics in one bounded pass, and `remp-scale` extracts sub-KBs
//!   for shard files the same way.
//!
//! Writers come in the same two grains: [`write_snapshot`] freezes an
//! in-memory [`Kb`], while [`SnapshotWriter`] streams sections produced
//! incrementally (the scale generator writes million-entity snapshots
//! this way without ever holding the KB in memory). Both produce
//! byte-identical files for the same content.

use std::fs::File;
use std::io::{BufReader, Cursor as IoCursor, Seek, Write};
use std::path::Path;

use remp_kb::{AttrId, EntityId, Kb, KbStats, RelId, Value};

use crate::framing::{put_str, put_u32, ByteCursor, EnvelopeReader, EnvelopeWriter};
use crate::{IngestError, LoadedKb};

/// Magic bytes opening every snapshot.
pub const MAGIC: [u8; 4] = *b"RKB\0";

/// Snapshot format version this build writes (and the only one it reads).
pub const SNAPSHOT_VERSION: u32 = 1;

/// The conventional file extension.
pub const SNAPSHOT_EXTENSION: &str = "rkb";

/// Section tag: KB name (one string).
pub const TAG_NAME: u32 = 1;
/// Section tag: entity label table.
pub const TAG_LABELS: u32 = 2;
/// Section tag: attribute name table.
pub const TAG_ATTR_NAMES: u32 = 3;
/// Section tag: relationship name table.
pub const TAG_REL_NAMES: u32 = 4;
/// Section tag: per-entity attribute triples.
pub const TAG_ATTR_TRIPLES: u32 = 5;
/// Section tag: per-entity outgoing relationship triples.
pub const TAG_REL_OUT: u32 = 6;
/// Section tag: per-entity incoming relationship triples.
pub const TAG_REL_IN: u32 = 7;
/// Section tag: external identifier table.
pub const TAG_EXTERNAL_IDS: u32 = 8;

/// Value kind byte: UTF-8 text literal.
pub const KIND_TEXT: u8 = 0;
/// Value kind byte: `f64` numeric literal (stored as IEEE-754 bits).
pub const KIND_NUMBER: u8 = 1;

// ---- writer -----------------------------------------------------------

/// Streaming `.rkb` writer: sections are appended one at a time and the
/// header (payload length, checksum) is patched on [`finish`].
///
/// This is [`write_snapshot`]'s engine, exposed so producers that never
/// materialise a [`Kb`] — the `remp-scale` dataset generator — can emit
/// snapshots with peak memory bounded by one section body. Sections must
/// arrive in tag order ([`TAG_NAME`] … [`TAG_EXTERNAL_IDS`]); the reader
/// tolerates any order, but fixed order keeps equal content producing
/// byte-identical files.
///
/// [`finish`]: SnapshotWriter::finish
pub struct SnapshotWriter<W: Write + Seek> {
    inner: EnvelopeWriter<W>,
}

impl SnapshotWriter<File> {
    /// Creates `path` and writes the snapshot header.
    pub fn create(path: &Path) -> Result<Self, IngestError> {
        Ok(SnapshotWriter { inner: EnvelopeWriter::create(path, MAGIC, SNAPSHOT_VERSION)? })
    }
}

impl<W: Write + Seek> SnapshotWriter<W> {
    /// Wraps an arbitrary seekable sink (`path` is error context only).
    pub fn new(sink: W, path: &Path) -> Result<Self, IngestError> {
        Ok(SnapshotWriter { inner: EnvelopeWriter::new(sink, path, MAGIC, SNAPSHOT_VERSION)? })
    }

    /// Appends one section. `body` is the raw section body, laid out per
    /// FORMAT.md (the `put_*` helpers in [`crate::framing`] match the
    /// encoding).
    pub fn section(&mut self, tag: u32, body: &[u8]) -> Result<(), IngestError> {
        self.inner.section(tag, body)
    }

    /// Patches the header and returns the sink.
    pub fn finish(self) -> Result<W, IngestError> {
        self.inner.finish()
    }
}

/// Writes `kb` (with its external identifiers) as a snapshot at `path`.
///
/// `external_ids` must hold one identifier per entity — the IRIs/ids the
/// entity had in its source text files, preserved so gold alignments
/// keep resolving against snapshots.
pub fn write_snapshot(kb: &Kb, external_ids: &[String], path: &Path) -> Result<(), IngestError> {
    let mut writer = SnapshotWriter::create(path)?;
    write_kb_sections(&mut writer, kb, external_ids)?;
    writer.finish()?;
    Ok(())
}

/// Encodes `kb` as snapshot bytes (the exact bytes [`write_snapshot`]
/// puts on disk) — used where a snapshot is embedded in a larger file,
/// e.g. the sub-KBs inside `remp-scale` shard files.
pub fn encode_snapshot(kb: &Kb, external_ids: &[String]) -> Vec<u8> {
    let sink = IoCursor::new(Vec::new());
    let path = Path::new("<memory>");
    let mut writer = SnapshotWriter::new(sink, path).expect("in-memory writes cannot fail");
    write_kb_sections(&mut writer, kb, external_ids).expect("in-memory writes cannot fail");
    writer.finish().expect("in-memory writes cannot fail").into_inner()
}

fn write_kb_sections<W: Write + Seek>(
    writer: &mut SnapshotWriter<W>,
    kb: &Kb,
    external_ids: &[String],
) -> Result<(), IngestError> {
    assert_eq!(
        external_ids.len(),
        kb.num_entities(),
        "one external identifier per entity required"
    );
    let mut body = Vec::new();
    let emit =
        |writer: &mut SnapshotWriter<W>, tag: u32, body: &mut Vec<u8>| -> Result<(), IngestError> {
            writer.section(tag, body)?;
            body.clear();
            Ok(())
        };

    put_str(&mut body, kb.name());
    emit(writer, TAG_NAME, &mut body)?;

    put_u32(&mut body, kb.num_entities() as u32);
    for u in kb.entities() {
        put_str(&mut body, kb.label(u));
    }
    emit(writer, TAG_LABELS, &mut body)?;

    put_u32(&mut body, kb.num_attrs() as u32);
    for a in kb.attrs() {
        put_str(&mut body, kb.attr_name(a));
    }
    emit(writer, TAG_ATTR_NAMES, &mut body)?;

    put_u32(&mut body, kb.num_rels() as u32);
    for r in kb.rels() {
        put_str(&mut body, kb.rel_name(r));
    }
    emit(writer, TAG_REL_NAMES, &mut body)?;

    put_u32(&mut body, kb.num_entities() as u32);
    for u in kb.entities() {
        let pairs = kb.attrs_of(u);
        put_u32(&mut body, pairs.len() as u32);
        for (a, v) in pairs {
            put_u32(&mut body, a.0);
            match v {
                Value::Text(s) => {
                    body.push(KIND_TEXT);
                    put_str(&mut body, s);
                }
                Value::Number(n) => {
                    body.push(KIND_NUMBER);
                    body.extend_from_slice(&n.to_bits().to_le_bytes());
                }
            }
        }
    }
    emit(writer, TAG_ATTR_TRIPLES, &mut body)?;

    for (tag, side) in [(TAG_REL_OUT, false), (TAG_REL_IN, true)] {
        put_u32(&mut body, kb.num_entities() as u32);
        for u in kb.entities() {
            let pairs = if side { kb.rels_into(u) } else { kb.rels_of(u) };
            put_u32(&mut body, pairs.len() as u32);
            for &(r, v) in pairs {
                put_u32(&mut body, r.0);
                put_u32(&mut body, v.0);
            }
        }
        emit(writer, tag, &mut body)?;
    }

    put_u32(&mut body, external_ids.len() as u32);
    for id in external_ids {
        put_str(&mut body, id);
    }
    emit(writer, TAG_EXTERNAL_IDS, &mut body)?;
    Ok(())
}

// ---- streaming section reader ----------------------------------------

/// Section-at-a-time `.rkb` reader.
///
/// Validates the header eagerly on [`open`](RkbSections::open) and the
/// checksum incrementally as sections stream by: the final `Ok(None)`
/// from [`next_section`](RkbSections::next_section) certifies the whole
/// payload. Peak memory is the largest single section — this is the
/// reader behind [`load_snapshot`], [`snapshot_stats`] and the
/// `remp-scale` sub-KB extractor.
pub struct RkbSections {
    inner: EnvelopeReader<BufReader<File>>,
}

impl RkbSections {
    /// Opens `path`, validating magic, version and payload length.
    pub fn open(path: &Path) -> Result<RkbSections, IngestError> {
        Ok(RkbSections { inner: EnvelopeReader::open(path, MAGIC, SNAPSHOT_VERSION)? })
    }

    /// Next `(tag, body)` pair in file order; `Ok(None)` after the last
    /// section, once the checksum verified.
    pub fn next_section(&mut self) -> Result<Option<(u32, Vec<u8>)>, IngestError> {
        self.inner.next_section()
    }
}

// ---- reader -----------------------------------------------------------

/// Loads a snapshot written by [`write_snapshot`], streaming it
/// section-at-a-time (peak transient memory: one section body).
pub fn load_snapshot(path: &Path) -> Result<LoadedKb, IngestError> {
    let mut sections = RkbSections::open(path)?;
    let mut assembler = Assembler::default();
    while let Some((tag, body)) = sections.next_section()? {
        assembler.section(tag, &body, path)?;
    }
    assembler.finish(path)
}

/// Decodes a snapshot from bytes (`path` is error context only).
pub fn decode_snapshot(data: &[u8], path: &Path) -> Result<LoadedKb, IngestError> {
    let mut reader = EnvelopeReader::new(IoCursor::new(data), path, MAGIC, SNAPSHOT_VERSION)?;
    let payload = data.len() as u64 - 24;
    if reader.remaining_bytes() != payload {
        return Err(IngestError::snapshot(
            path,
            format!(
                "truncated: header promises {} payload bytes, file has {payload}",
                reader.remaining_bytes()
            ),
        ));
    }
    // The bytes are already resident, so verify integrity before parsing
    // — corruption then always reports as a checksum mismatch instead of
    // whatever decode error the flipped bytes happen to produce. (The
    // streaming [`load_snapshot`] path cannot afford a second pass; there
    // the checksum certifies the payload on the final `None`.)
    let stored = u64::from_le_bytes(data[16..24].try_into().unwrap());
    let actual = crate::framing::fnv1a64(&data[24..]);
    if stored != actual {
        return Err(IngestError::snapshot(
            path,
            format!("checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"),
        ));
    }
    let mut assembler = Assembler::default();
    while let Some((tag, body)) = reader.next_section()? {
        assembler.section(tag, &body, path)?;
    }
    assembler.finish(path)
}

/// Accumulates decoded sections until all eight required ones arrived.
#[derive(Default)]
struct Assembler {
    name: Option<String>,
    labels: Option<Vec<String>>,
    attr_names: Option<Vec<String>>,
    rel_names: Option<Vec<String>>,
    attr_values: Option<Vec<Vec<(AttrId, Value)>>>,
    rel_out: Option<Vec<Vec<(RelId, EntityId)>>>,
    rel_in: Option<Vec<Vec<(RelId, EntityId)>>>,
    external_ids: Option<Vec<String>>,
}

impl Assembler {
    fn section(&mut self, tag: u32, body: &[u8], path: &Path) -> Result<(), IngestError> {
        let fail = |msg: String| IngestError::snapshot(path, msg);
        let mut sec = ByteCursor::new(body, path);
        match tag {
            TAG_NAME => self.name = Some(sec.string()?),
            TAG_LABELS => self.labels = Some(sec.string_table()?),
            TAG_ATTR_NAMES => self.attr_names = Some(sec.string_table()?),
            TAG_REL_NAMES => self.rel_names = Some(sec.string_table()?),
            TAG_ATTR_TRIPLES => {
                let n = sec.u32()? as usize;
                let mut table = Vec::with_capacity(sec.capped(n, 4));
                for _ in 0..n {
                    let count = sec.u32()? as usize;
                    // Each item is ≥ 9 bytes (attr + kind + shortest value).
                    let mut row = Vec::with_capacity(sec.capped(count, 9));
                    for _ in 0..count {
                        let attr = AttrId(sec.u32()?);
                        let value = match sec.u8()? {
                            KIND_TEXT => Value::Text(sec.string()?),
                            KIND_NUMBER => Value::Number(f64::from_bits(sec.u64()?)),
                            k => return Err(fail(format!("unknown value kind {k}"))),
                        };
                        row.push((attr, value));
                    }
                    table.push(row);
                }
                sec.expect_end()?;
                self.attr_values = Some(table);
            }
            TAG_REL_OUT | TAG_REL_IN => {
                let n = sec.u32()? as usize;
                let mut table = Vec::with_capacity(sec.capped(n, 4));
                for _ in 0..n {
                    let count = sec.u32()? as usize;
                    let mut row = Vec::with_capacity(sec.capped(count, 8));
                    for _ in 0..count {
                        row.push((RelId(sec.u32()?), EntityId(sec.u32()?)));
                    }
                    table.push(row);
                }
                sec.expect_end()?;
                if tag == TAG_REL_OUT {
                    self.rel_out = Some(table);
                } else {
                    self.rel_in = Some(table);
                }
            }
            TAG_EXTERNAL_IDS => self.external_ids = Some(sec.string_table()?),
            other => {
                return Err(fail(format!(
                    "unknown section tag {other} (written by a newer build?)"
                )));
            }
        }
        Ok(())
    }

    fn finish(self, path: &Path) -> Result<LoadedKb, IngestError> {
        let fail = |msg: String| IngestError::snapshot(path, msg);
        let missing = |what: &str| fail(format!("missing required section: {what}"));
        let name = self.name.ok_or_else(|| missing("name"))?;
        let labels = self.labels.ok_or_else(|| missing("labels"))?;
        let attr_names = self.attr_names.ok_or_else(|| missing("attribute names"))?;
        let rel_names = self.rel_names.ok_or_else(|| missing("relationship names"))?;
        let attr_values = self.attr_values.ok_or_else(|| missing("attribute triples"))?;
        let rel_out = self.rel_out.ok_or_else(|| missing("outgoing relationships"))?;
        let rel_in = self.rel_in.ok_or_else(|| missing("incoming relationships"))?;
        let external_ids = self.external_ids.ok_or_else(|| missing("external ids"))?;
        if external_ids.len() != labels.len() {
            return Err(fail(format!(
                "{} external ids for {} entities",
                external_ids.len(),
                labels.len()
            )));
        }

        let kb = Kb::from_parts(name, labels, attr_names, rel_names, attr_values, rel_out, rel_in)
            .map_err(|error| IngestError::Kb { path: path.to_path_buf(), error })?;
        Ok(LoadedKb { kb, external_ids })
    }
}

// ---- streaming stats --------------------------------------------------

/// Computes Table II-style [`KbStats`] for a snapshot in one streaming
/// pass, without building the [`Kb`] — peak memory is one section body
/// plus two bits per entity (the isolated-entity tracking).
///
/// `rempctl inspect` uses this for `.rkb` inputs, which is what makes
/// inspecting a million-entity snapshot cheap.
pub fn snapshot_stats(path: &Path) -> Result<KbStats, IngestError> {
    let mut sections = RkbSections::open(path)?;
    let mut name = String::new();
    let mut entities = 0usize;
    let mut attributes = 0usize;
    let mut relationships = 0usize;
    let mut attr_triples = 0usize;
    let mut rel_triples = 0usize;
    let mut has_out: Vec<bool> = Vec::new();
    let mut has_in: Vec<bool> = Vec::new();

    // Counts strings without copying them out of the section body.
    let skip_string_table = |sec: &mut ByteCursor| -> Result<usize, IngestError> {
        let n = sec.u32()? as usize;
        for _ in 0..n {
            let len = sec.u32()? as usize;
            sec.bytes(len)?;
        }
        sec.expect_end()?;
        Ok(n)
    };

    while let Some((tag, body)) = sections.next_section()? {
        let mut sec = ByteCursor::new(&body, path);
        match tag {
            TAG_NAME => name = sec.string()?,
            TAG_LABELS => entities = skip_string_table(&mut sec)?,
            TAG_ATTR_NAMES => attributes = skip_string_table(&mut sec)?,
            TAG_REL_NAMES => relationships = skip_string_table(&mut sec)?,
            TAG_ATTR_TRIPLES => {
                let n = sec.u32()? as usize;
                for _ in 0..n {
                    let count = sec.u32()? as usize;
                    attr_triples += count;
                    for _ in 0..count {
                        sec.u32()?; // attr id
                        match sec.u8()? {
                            KIND_TEXT => {
                                let len = sec.u32()? as usize;
                                sec.bytes(len)?;
                            }
                            KIND_NUMBER => {
                                sec.u64()?;
                            }
                            k => {
                                return Err(IngestError::snapshot(
                                    path,
                                    format!("unknown value kind {k}"),
                                ))
                            }
                        }
                    }
                }
                sec.expect_end()?;
            }
            TAG_REL_OUT | TAG_REL_IN => {
                let n = sec.u32()? as usize;
                let mut present = Vec::with_capacity(sec.capped(n, 4));
                let mut triples = 0usize;
                for _ in 0..n {
                    let count = sec.u32()? as usize;
                    triples += count;
                    present.push(count > 0);
                    sec.bytes(count.saturating_mul(8))?;
                }
                sec.expect_end()?;
                if tag == TAG_REL_OUT {
                    rel_triples = triples;
                    has_out = present;
                } else {
                    has_in = present;
                }
            }
            TAG_EXTERNAL_IDS => {
                skip_string_table(&mut sec)?;
            }
            other => {
                return Err(IngestError::snapshot(
                    path,
                    format!("unknown section tag {other} (written by a newer build?)"),
                ));
            }
        }
    }

    let isolated_entities = (0..entities)
        .filter(|&i| {
            !has_out.get(i).copied().unwrap_or(false) && !has_in.get(i).copied().unwrap_or(false)
        })
        .count();
    Ok(KbStats {
        name,
        entities,
        attributes,
        relationships,
        attr_triples,
        rel_triples,
        isolated_entities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::fnv1a64;
    use remp_kb::KbBuilder;
    use std::path::PathBuf;

    fn sample_kb() -> Kb {
        let mut b = KbBuilder::new("snap-test");
        let a = b.add_entity("Ada");
        let c = b.add_entity("Babbage");
        let born = b.add_attr("born");
        let note = b.add_attr("note");
        let knows = b.add_rel("knows");
        b.add_attr_triple(a, born, Value::number(1815.0));
        b.add_attr_triple(a, note, Value::text("analyst émigré 😀"));
        b.add_attr_triple(c, born, Value::number(1791.0));
        b.add_rel_triple(a, knows, c);
        b.add_rel_triple(c, knows, a);
        b.finish()
    }

    fn ext_ids(kb: &Kb) -> Vec<String> {
        (0..kb.num_entities()).map(|i| format!("urn:x:{i}")).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("remp-snap-test-{name}-{}.rkb", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_kb_and_external_ids() {
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("roundtrip");
        write_snapshot(&kb, &ids, &path).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.kb, kb);
        assert_eq!(loaded.external_ids, ids);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_kb_round_trips() {
        let kb = KbBuilder::new("empty").finish();
        let path = tmp("empty");
        write_snapshot(&kb, &[], &path).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.kb.num_entities(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn encode_snapshot_matches_the_file_writer() {
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("encode");
        write_snapshot(&kb, &ids, &path).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(encode_snapshot(&kb, &ids), on_disk);
        let decoded = decode_snapshot(&encode_snapshot(&kb, &ids), Path::new("mem.rkb")).unwrap();
        assert_eq!(decoded.kb, kb);
    }

    #[test]
    fn sections_stream_in_tag_order() {
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("sections");
        write_snapshot(&kb, &ids, &path).unwrap();
        let mut sections = RkbSections::open(&path).unwrap();
        let mut tags = Vec::new();
        while let Some((tag, _body)) = sections.next_section().unwrap() {
            tags.push(tag);
        }
        std::fs::remove_file(&path).unwrap();
        assert_eq!(
            tags,
            vec![
                TAG_NAME,
                TAG_LABELS,
                TAG_ATTR_NAMES,
                TAG_REL_NAMES,
                TAG_ATTR_TRIPLES,
                TAG_REL_OUT,
                TAG_REL_IN,
                TAG_EXTERNAL_IDS
            ]
        );
    }

    #[test]
    fn streaming_stats_match_the_loaded_kb() {
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("stats");
        write_snapshot(&kb, &ids, &path).unwrap();
        let stats = snapshot_stats(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(stats, kb.stats());
    }

    fn snapshot_bytes() -> Vec<u8> {
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("bytes");
        write_snapshot(&kb, &ids, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        data
    }

    #[test]
    fn corruption_is_detected() {
        let good = snapshot_bytes();
        let p = Path::new("t.rkb");

        let err = decode_snapshot(&[], p).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let err = decode_snapshot(&bad_magic, p).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        let err = decode_snapshot(&bad_version, p).unwrap_err();
        assert!(err.to_string().contains("unsupported version 99"), "{err}");

        let truncated = &good[..good.len() - 5];
        let err = decode_snapshot(truncated, p).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        let err = decode_snapshot(&flipped, p).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    /// Walks the section headers to find `tag`'s body offset in `data`.
    fn section_body_offset(data: &[u8], tag: u32) -> usize {
        let mut pos = 24;
        loop {
            let t = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
            let len = u64::from_le_bytes(data[pos + 4..pos + 12].try_into().unwrap()) as usize;
            if t == tag {
                return pos + 12;
            }
            pos += 12 + len;
        }
    }

    #[test]
    fn dangling_ids_inside_a_valid_envelope_are_rejected() {
        // Corrupt a rel-triple entity id, then re-seal the checksum so
        // only Kb::validate can catch it.
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("dangling");
        write_snapshot(&kb, &ids, &path).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        // REL_OUT body: n_entities u32, then entity 0's row: count u32,
        // first pair (rel u32 at +8, entity u32 at +12).
        let body = section_body_offset(&data, TAG_REL_OUT);
        data[body + 12..body + 16].copy_from_slice(&999u32.to_le_bytes());
        let checksum = fnv1a64(&data[24..]);
        data[16..24].copy_from_slice(&checksum.to_le_bytes());

        let err = decode_snapshot(&data, Path::new("t.rkb")).unwrap_err();
        assert!(matches!(err, IngestError::Kb { .. }), "{err}");
        assert!(err.to_string().contains("e999"), "{err}");
    }

    /// A forged huge count behind a *valid* checksum (FNV is not
    /// adversarial-resistant, so attackers can re-seal) must fail with a
    /// typed error, not a giant allocation.
    #[test]
    fn forged_counts_with_valid_checksum_fail_cleanly() {
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("forged");
        write_snapshot(&kb, &ids, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        for tag in [TAG_ATTR_TRIPLES, TAG_REL_OUT, TAG_LABELS] {
            let mut forged = data.clone();
            let body = section_body_offset(&forged, tag);
            forged[body..body + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let checksum = fnv1a64(&forged[24..]);
            forged[16..24].copy_from_slice(&checksum.to_le_bytes());
            let err = decode_snapshot(&forged, Path::new("t.rkb")).unwrap_err();
            assert!(matches!(err, IngestError::Snapshot { .. }), "tag {tag}: {err}");
        }
    }

    #[test]
    #[should_panic(expected = "one external identifier per entity")]
    fn external_id_count_mismatch_panics_in_the_writer() {
        let path = tmp("mismatch");
        let _ = write_snapshot(&sample_kb(), &["only-one".to_owned()], &path);
    }
}
