//! The versioned `.rkb` binary knowledge-base snapshot.
//!
//! Multi-million-triple dumps should be parsed once: `rempctl import`
//! converts text to a snapshot, and every later run loads the snapshot
//! in milliseconds. The file stores the *frozen* [`Kb`] representation —
//! adjacency tables already grouped and sorted — so loading is a single
//! read plus [`Kb::from_parts`]'s linear validation sweep: no tokenizing,
//! no re-sorting, no re-interning.
//!
//! Layout (all integers little-endian; see FORMAT.md for the contract):
//!
//! ```text
//! magic  b"RKB\0"            4 bytes
//! version u32                this build writes 1, reads exactly 1
//! payload length u64         integrity: must match the file size
//! checksum u64               FNV-1a 64 over the payload bytes
//! payload                    length-prefixed sections
//! ```
//!
//! Each section is `tag: u32, length: u64, body`. All eight section tags
//! are required in version 1; an unknown tag is an error (format changes
//! bump the version). Corruption — bad magic, truncation, checksum
//! mismatch, dangling ids — surfaces as a typed [`IngestError`], never a
//! panic.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

use remp_kb::{AttrId, EntityId, Kb, RelId, Value};

use crate::{IngestError, LoadedKb};

/// Magic bytes opening every snapshot.
pub const MAGIC: [u8; 4] = *b"RKB\0";

/// Snapshot format version this build writes (and the only one it reads).
pub const SNAPSHOT_VERSION: u32 = 1;

/// The conventional file extension.
pub const SNAPSHOT_EXTENSION: &str = "rkb";

const TAG_NAME: u32 = 1;
const TAG_LABELS: u32 = 2;
const TAG_ATTR_NAMES: u32 = 3;
const TAG_REL_NAMES: u32 = 4;
const TAG_ATTR_TRIPLES: u32 = 5;
const TAG_REL_OUT: u32 = 6;
const TAG_REL_IN: u32 = 7;
const TAG_EXTERNAL_IDS: u32 = 8;

const KIND_TEXT: u8 = 0;
const KIND_NUMBER: u8 = 1;

/// FNV-1a 64 — dependency-free integrity hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---- writer -----------------------------------------------------------

/// Writes `kb` (with its external identifiers) as a snapshot at `path`.
///
/// `external_ids` must hold one identifier per entity — the IRIs/ids the
/// entity had in its source text files, preserved so gold alignments
/// keep resolving against snapshots.
pub fn write_snapshot(kb: &Kb, external_ids: &[String], path: &Path) -> Result<(), IngestError> {
    assert_eq!(
        external_ids.len(),
        kb.num_entities(),
        "one external identifier per entity required"
    );
    let mut payload = Vec::new();
    section(&mut payload, TAG_NAME, |b| put_str(b, kb.name()));
    section(&mut payload, TAG_LABELS, |b| {
        put_u32(b, kb.num_entities() as u32);
        for u in kb.entities() {
            put_str(b, kb.label(u));
        }
    });
    section(&mut payload, TAG_ATTR_NAMES, |b| {
        put_u32(b, kb.num_attrs() as u32);
        for a in kb.attrs() {
            put_str(b, kb.attr_name(a));
        }
    });
    section(&mut payload, TAG_REL_NAMES, |b| {
        put_u32(b, kb.num_rels() as u32);
        for r in kb.rels() {
            put_str(b, kb.rel_name(r));
        }
    });
    section(&mut payload, TAG_ATTR_TRIPLES, |b| {
        put_u32(b, kb.num_entities() as u32);
        for u in kb.entities() {
            let pairs = kb.attrs_of(u);
            put_u32(b, pairs.len() as u32);
            for (a, v) in pairs {
                put_u32(b, a.0);
                match v {
                    Value::Text(s) => {
                        b.push(KIND_TEXT);
                        put_str(b, s);
                    }
                    Value::Number(n) => {
                        b.push(KIND_NUMBER);
                        b.extend_from_slice(&n.to_bits().to_le_bytes());
                    }
                }
            }
        }
    });
    for (tag, side) in [(TAG_REL_OUT, false), (TAG_REL_IN, true)] {
        section(&mut payload, tag, |b| {
            put_u32(b, kb.num_entities() as u32);
            for u in kb.entities() {
                let pairs = if side { kb.rels_into(u) } else { kb.rels_of(u) };
                put_u32(b, pairs.len() as u32);
                for &(r, v) in pairs {
                    put_u32(b, r.0);
                    put_u32(b, v.0);
                }
            }
        });
    }
    section(&mut payload, TAG_EXTERNAL_IDS, |b| {
        put_u32(b, external_ids.len() as u32);
        for id in external_ids {
            put_str(b, id);
        }
    });

    let file = File::create(path).map_err(|e| IngestError::io(path, e))?;
    let mut out = BufWriter::new(file);
    let emit = |out: &mut BufWriter<File>| -> std::io::Result<()> {
        out.write_all(&MAGIC)?;
        out.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        out.write_all(&(payload.len() as u64).to_le_bytes())?;
        out.write_all(&fnv1a64(&payload).to_le_bytes())?;
        out.write_all(&payload)?;
        out.flush()
    };
    emit(&mut out).map_err(|e| IngestError::io(path, e))
}

fn section(payload: &mut Vec<u8>, tag: u32, fill: impl FnOnce(&mut Vec<u8>)) {
    put_u32(payload, tag);
    let len_at = payload.len();
    payload.extend_from_slice(&0u64.to_le_bytes());
    let start = payload.len();
    fill(payload);
    let len = (payload.len() - start) as u64;
    payload[len_at..len_at + 8].copy_from_slice(&len.to_le_bytes());
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, s.len() as u32);
    b.extend_from_slice(s.as_bytes());
}

// ---- reader -----------------------------------------------------------

/// Loads a snapshot written by [`write_snapshot`].
pub fn load_snapshot(path: &Path) -> Result<LoadedKb, IngestError> {
    let data = fs::read(path).map_err(|e| IngestError::io(path, e))?;
    decode_snapshot(&data, path)
}

/// Decodes a snapshot from bytes (`path` is error context only).
pub fn decode_snapshot(data: &[u8], path: &Path) -> Result<LoadedKb, IngestError> {
    let fail = |msg: String| IngestError::snapshot(path, msg);
    if data.len() < 24 {
        return Err(fail(format!("file is {} bytes, header needs 24", data.len())));
    }
    if data[..4] != MAGIC {
        return Err(fail("bad magic (not an .rkb snapshot)".into()));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(fail(format!(
            "unsupported version {version} (this build reads {SNAPSHOT_VERSION})"
        )));
    }
    let payload_len = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let checksum = u64::from_le_bytes(data[16..24].try_into().unwrap());
    let payload = &data[24..];
    if payload.len() as u64 != payload_len {
        return Err(fail(format!(
            "truncated: header promises {payload_len} payload bytes, file has {}",
            payload.len()
        )));
    }
    let actual = fnv1a64(payload);
    if actual != checksum {
        return Err(fail(format!(
            "checksum mismatch (stored {checksum:#018x}, computed {actual:#018x})"
        )));
    }

    let mut name = None;
    let mut labels = None;
    let mut attr_names = None;
    let mut rel_names = None;
    let mut attr_values = None;
    let mut rel_out = None;
    let mut rel_in = None;
    let mut external_ids = None;

    let mut cur = Cursor { data: payload, pos: 0, path };
    while !cur.done() {
        let tag = cur.u32()?;
        let len = cur.u64()? as usize;
        let body = cur.bytes(len)?;
        let mut sec = Cursor { data: body, pos: 0, path };
        match tag {
            TAG_NAME => name = Some(sec.string()?),
            TAG_LABELS => labels = Some(sec.string_table()?),
            TAG_ATTR_NAMES => attr_names = Some(sec.string_table()?),
            TAG_REL_NAMES => rel_names = Some(sec.string_table()?),
            TAG_ATTR_TRIPLES => {
                let n = sec.u32()? as usize;
                let mut table = Vec::with_capacity(sec.capped(n, 4));
                for _ in 0..n {
                    let count = sec.u32()? as usize;
                    // Each item is ≥ 9 bytes (attr + kind + shortest value).
                    let mut row = Vec::with_capacity(sec.capped(count, 9));
                    for _ in 0..count {
                        let attr = AttrId(sec.u32()?);
                        let value = match sec.u8()? {
                            KIND_TEXT => Value::Text(sec.string()?),
                            KIND_NUMBER => Value::Number(f64::from_bits(sec.u64()?)),
                            k => return Err(fail(format!("unknown value kind {k}"))),
                        };
                        row.push((attr, value));
                    }
                    table.push(row);
                }
                sec.expect_end()?;
                attr_values = Some(table);
            }
            TAG_REL_OUT | TAG_REL_IN => {
                let n = sec.u32()? as usize;
                let mut table = Vec::with_capacity(sec.capped(n, 4));
                for _ in 0..n {
                    let count = sec.u32()? as usize;
                    let mut row = Vec::with_capacity(sec.capped(count, 8));
                    for _ in 0..count {
                        row.push((RelId(sec.u32()?), EntityId(sec.u32()?)));
                    }
                    table.push(row);
                }
                sec.expect_end()?;
                if tag == TAG_REL_OUT {
                    rel_out = Some(table);
                } else {
                    rel_in = Some(table);
                }
            }
            TAG_EXTERNAL_IDS => external_ids = Some(sec.string_table()?),
            other => {
                return Err(fail(format!(
                    "unknown section tag {other} (written by a newer build?)"
                )));
            }
        }
    }

    let missing = |what: &str| fail(format!("missing required section: {what}"));
    let name = name.ok_or_else(|| missing("name"))?;
    let labels = labels.ok_or_else(|| missing("labels"))?;
    let attr_names = attr_names.ok_or_else(|| missing("attribute names"))?;
    let rel_names = rel_names.ok_or_else(|| missing("relationship names"))?;
    let attr_values = attr_values.ok_or_else(|| missing("attribute triples"))?;
    let rel_out = rel_out.ok_or_else(|| missing("outgoing relationships"))?;
    let rel_in = rel_in.ok_or_else(|| missing("incoming relationships"))?;
    let external_ids = external_ids.ok_or_else(|| missing("external ids"))?;
    if external_ids.len() != labels.len() {
        return Err(fail(format!(
            "{} external ids for {} entities",
            external_ids.len(),
            labels.len()
        )));
    }

    let kb = Kb::from_parts(name, labels, attr_names, rel_names, attr_values, rel_out, rel_in)
        .map_err(|error| IngestError::Kb { path: path.to_path_buf(), error })?;
    Ok(LoadedKb { kb, external_ids })
}

/// Bounds-checked little-endian reader over one byte slice; out-of-range
/// reads become [`IngestError::Snapshot`] citing the file.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn done(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn truncated(&self) -> IngestError {
        IngestError::snapshot(self.path, "section truncated or malformed".to_owned())
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], IngestError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        if end > self.data.len() {
            return Err(self.truncated());
        }
        let out = &self.data[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, IngestError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, IngestError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, IngestError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, IngestError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| IngestError::snapshot(self.path, "string is not UTF-8".to_owned()))
    }

    /// Caps a pre-allocation count by how many items of `min_size`
    /// bytes the rest of the section could possibly hold, so a forged
    /// count cannot trigger a huge allocation — the parse then fails
    /// with a truncation error instead.
    fn capped(&self, n: usize, min_size: usize) -> usize {
        n.min((self.data.len() - self.pos) / min_size + 1)
    }

    fn string_table(&mut self) -> Result<Vec<String>, IngestError> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(self.capped(n, 4));
        for _ in 0..n {
            out.push(self.string()?);
        }
        self.expect_end()?;
        Ok(out)
    }

    fn expect_end(&self) -> Result<(), IngestError> {
        if self.done() {
            Ok(())
        } else {
            Err(self.truncated()) // trailing garbage inside a section
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_kb::KbBuilder;
    use std::path::PathBuf;

    fn sample_kb() -> Kb {
        let mut b = KbBuilder::new("snap-test");
        let a = b.add_entity("Ada");
        let c = b.add_entity("Babbage");
        let born = b.add_attr("born");
        let note = b.add_attr("note");
        let knows = b.add_rel("knows");
        b.add_attr_triple(a, born, Value::number(1815.0));
        b.add_attr_triple(a, note, Value::text("analyst émigré 😀"));
        b.add_attr_triple(c, born, Value::number(1791.0));
        b.add_rel_triple(a, knows, c);
        b.add_rel_triple(c, knows, a);
        b.finish()
    }

    fn ext_ids(kb: &Kb) -> Vec<String> {
        (0..kb.num_entities()).map(|i| format!("urn:x:{i}")).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("remp-snap-test-{name}-{}.rkb", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_kb_and_external_ids() {
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("roundtrip");
        write_snapshot(&kb, &ids, &path).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.kb, kb);
        assert_eq!(loaded.external_ids, ids);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_kb_round_trips() {
        let kb = KbBuilder::new("empty").finish();
        let path = tmp("empty");
        write_snapshot(&kb, &[], &path).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.kb.num_entities(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    fn snapshot_bytes() -> Vec<u8> {
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("bytes");
        write_snapshot(&kb, &ids, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        data
    }

    #[test]
    fn corruption_is_detected() {
        let good = snapshot_bytes();
        let p = Path::new("t.rkb");

        let err = decode_snapshot(&[], p).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let err = decode_snapshot(&bad_magic, p).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        let err = decode_snapshot(&bad_version, p).unwrap_err();
        assert!(err.to_string().contains("unsupported version 99"), "{err}");

        let truncated = &good[..good.len() - 5];
        let err = decode_snapshot(truncated, p).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        let err = decode_snapshot(&flipped, p).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    /// Walks the section headers to find `tag`'s body offset in `data`.
    fn section_body_offset(data: &[u8], tag: u32) -> usize {
        let mut pos = 24;
        loop {
            let t = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
            let len = u64::from_le_bytes(data[pos + 4..pos + 12].try_into().unwrap()) as usize;
            if t == tag {
                return pos + 12;
            }
            pos += 12 + len;
        }
    }

    #[test]
    fn dangling_ids_inside_a_valid_envelope_are_rejected() {
        // Corrupt a rel-triple entity id, then re-seal the checksum so
        // only Kb::validate can catch it.
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("dangling");
        write_snapshot(&kb, &ids, &path).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        // REL_OUT body: n_entities u32, then entity 0's row: count u32,
        // first pair (rel u32 at +8, entity u32 at +12).
        let body = section_body_offset(&data, TAG_REL_OUT);
        data[body + 12..body + 16].copy_from_slice(&999u32.to_le_bytes());
        let checksum = fnv1a64(&data[24..]);
        data[16..24].copy_from_slice(&checksum.to_le_bytes());

        let err = decode_snapshot(&data, Path::new("t.rkb")).unwrap_err();
        assert!(matches!(err, IngestError::Kb { .. }), "{err}");
        assert!(err.to_string().contains("e999"), "{err}");
    }

    /// A forged huge count behind a *valid* checksum (FNV is not
    /// adversarial-resistant, so attackers can re-seal) must fail with a
    /// typed error, not a giant allocation.
    #[test]
    fn forged_counts_with_valid_checksum_fail_cleanly() {
        let kb = sample_kb();
        let ids = ext_ids(&kb);
        let path = tmp("forged");
        write_snapshot(&kb, &ids, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        for tag in [TAG_ATTR_TRIPLES, TAG_REL_OUT, TAG_LABELS] {
            let mut forged = data.clone();
            let body = section_body_offset(&forged, tag);
            forged[body..body + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let checksum = fnv1a64(&forged[24..]);
            forged[16..24].copy_from_slice(&checksum.to_le_bytes());
            let err = decode_snapshot(&forged, Path::new("t.rkb")).unwrap_err();
            assert!(matches!(err, IngestError::Snapshot { .. }), "tag {tag}: {err}");
        }
    }

    #[test]
    #[should_panic(expected = "one external identifier per entity")]
    fn external_id_count_mismatch_panics_in_the_writer() {
        let path = tmp("mismatch");
        let _ = write_snapshot(&sample_kb(), &["only-one".to_owned()], &path);
    }
}
