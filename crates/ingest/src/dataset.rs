//! File-backed datasets: format auto-detection, the [`FileDataset`]
//! bundle, and the exporter that turns synthetic presets into fixtures.
//!
//! A file-backed dataset is two knowledge bases plus a gold alignment —
//! exactly the shape [`GeneratedDataset`] has in memory — so loading one
//! plugs straight into the existing `SimulatedCrowd`/truth machinery and
//! every experiment driver via [`FileDataset::into_generated`].

use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};

use remp_datasets::GeneratedDataset;
use remp_kb::{EntityId, Kb};

use crate::csv::{csv_entity_id, export_csv_kb, load_csv_kb};
use crate::gold::{export_gold, load_gold};
use crate::ntriples::{entity_iri, export_ntriples, load_ntriples};
use crate::snapshot::{load_snapshot, SNAPSHOT_EXTENSION};
use crate::{IngestError, LoadedKb};

/// On-disk knowledge-base representations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KbFormat {
    /// Line-oriented N-Triples subset (`.nt`).
    NTriples,
    /// Directory of entity/attribute/relationship CSV tables.
    Csv,
    /// Binary `.rkb` snapshot.
    Snapshot,
}

impl KbFormat {
    /// Detects the format of `path`: directories are CSV, `.rkb` files
    /// are snapshots, everything else is N-Triples.
    pub fn detect(path: &Path) -> KbFormat {
        if path.is_dir() {
            KbFormat::Csv
        } else if path.extension().is_some_and(|e| e.eq_ignore_ascii_case(SNAPSHOT_EXTENSION)) {
            KbFormat::Snapshot
        } else {
            KbFormat::NTriples
        }
    }
}

/// Loads a knowledge base from `path` in whatever format it is in.
pub fn load_kb(path: &Path, kb_name: &str) -> Result<LoadedKb, IngestError> {
    match KbFormat::detect(path) {
        KbFormat::NTriples => load_ntriples(path, kb_name),
        KbFormat::Csv => load_csv_kb(path, kb_name),
        KbFormat::Snapshot => load_snapshot(path),
    }
}

/// A dataset loaded from files: two KBs and their gold alignment.
#[derive(Clone, Debug)]
pub struct FileDataset {
    /// Dataset name (for reporting).
    pub name: String,
    /// The first KB.
    pub kb1: Kb,
    /// The second KB.
    pub kb2: Kb,
    /// Gold entity matches (reference matches of paper §III-A).
    pub gold: HashSet<(EntityId, EntityId)>,
}

impl FileDataset {
    /// Loads the two KBs (any format each) and the gold alignment.
    pub fn load(
        name: impl Into<String>,
        kb1_path: &Path,
        kb2_path: &Path,
        gold_path: &Path,
    ) -> Result<FileDataset, IngestError> {
        let name = name.into();
        let loaded1 = load_kb(kb1_path, &format!("{name}-kb1"))?;
        let loaded2 = load_kb(kb2_path, &format!("{name}-kb2"))?;
        let gold = load_gold(gold_path, &loaded1.id_map(), &loaded2.id_map())?;
        Ok(FileDataset { name, kb1: loaded1.kb, kb2: loaded2.kb, gold })
    }

    /// Whether `(u1, u2)` is a true match — the hidden truth a simulated
    /// crowd answers from.
    pub fn is_match(&self, u1: EntityId, u2: EntityId) -> bool {
        self.gold.contains(&(u1, u2))
    }

    /// Number of gold matches.
    pub fn num_gold(&self) -> usize {
        self.gold.len()
    }

    /// Repackages as a [`GeneratedDataset`] so every existing experiment
    /// driver (e.g. [`remp_core::run_on_dataset`]) accepts file-backed
    /// data. Schema-level gold (attribute/relationship matches) is not
    /// part of the file formats and is left empty.
    pub fn into_generated(self) -> GeneratedDataset {
        GeneratedDataset {
            name: self.name,
            kb1: self.kb1,
            kb2: self.kb2,
            gold: self.gold,
            gold_attr_matches: Vec::new(),
            gold_rel_matches: Vec::new(),
        }
    }
}

/// Text formats the exporter can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExportFormat {
    /// `kb1.nt` / `kb2.nt` files.
    NTriples,
    /// `kb1/` / `kb2/` CSV table directories.
    Csv,
}

/// Where [`export_dataset`] put everything.
#[derive(Clone, Debug)]
pub struct ExportPaths {
    /// First KB (file or directory).
    pub kb1: PathBuf,
    /// Second KB (file or directory).
    pub kb2: PathBuf,
    /// Gold alignment TSV.
    pub gold: PathBuf,
}

/// Writes a generated dataset into `dir` as loadable text fixtures:
/// the two KBs plus `gold.tsv` keyed by the exporter's entity ids.
pub fn export_dataset(
    dataset: &GeneratedDataset,
    dir: &Path,
    format: ExportFormat,
) -> Result<ExportPaths, IngestError> {
    fs::create_dir_all(dir).map_err(|e| IngestError::io(dir, e))?;
    let default_ids = |kb: &Kb| -> Vec<String> {
        (0..kb.num_entities())
            .map(|i| match format {
                ExportFormat::NTriples => entity_iri(i),
                ExportFormat::Csv => csv_entity_id(i),
            })
            .collect()
    };
    let (kb1, kb2) = match format {
        ExportFormat::NTriples => {
            let kb1 = dir.join("kb1.nt");
            let kb2 = dir.join("kb2.nt");
            export_ntriples(&dataset.kb1, &kb1)?;
            export_ntriples(&dataset.kb2, &kb2)?;
            (kb1, kb2)
        }
        ExportFormat::Csv => {
            let kb1 = dir.join("kb1");
            let kb2 = dir.join("kb2");
            export_csv_kb(&dataset.kb1, &kb1)?;
            export_csv_kb(&dataset.kb2, &kb2)?;
            (kb1, kb2)
        }
    };
    let gold = dir.join("gold.tsv");
    export_gold(&dataset.gold, &default_ids(&dataset.kb1), &default_ids(&dataset.kb2), &gold)?;
    Ok(ExportPaths { kb1, kb2, gold })
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_datasets::{generate, tiny};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("remp-dataset-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn format_detection() {
        assert_eq!(KbFormat::detect(Path::new("x.nt")), KbFormat::NTriples);
        assert_eq!(KbFormat::detect(Path::new("x.rkb")), KbFormat::Snapshot);
        assert_eq!(KbFormat::detect(Path::new("x.RKB")), KbFormat::Snapshot);
        assert_eq!(KbFormat::detect(&std::env::temp_dir()), KbFormat::Csv);
    }

    #[test]
    fn export_then_load_preserves_dataset_in_both_formats() {
        let dataset = generate(&tiny(1.0));
        for (format, tag) in [(ExportFormat::NTriples, "nt"), (ExportFormat::Csv, "csv")] {
            let dir = tmp(tag);
            let paths = export_dataset(&dataset, &dir, format).unwrap();
            let loaded =
                FileDataset::load(&dataset.name, &paths.kb1, &paths.kb2, &paths.gold).unwrap();
            assert_eq!(loaded.kb1, dataset.kb1, "{tag}");
            assert_eq!(loaded.kb2, dataset.kb2, "{tag}");
            assert_eq!(loaded.gold, dataset.gold, "{tag}");
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}
