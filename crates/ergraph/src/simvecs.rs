//! Similarity-vector construction over the attribute alignment (paper
//! §IV-D): `s(u1, u2) = (s_1, …, s_|Mat|)` with `s_i = simL` on the i-th
//! attribute match.

use remp_kb::{EntityId, Kb};
use remp_par::Parallelism;
use remp_simil::{sim_l_weighted_prepared, PreparedLiteral, SimVec};

use crate::{AttrAlignment, Candidates};

/// Builds one similarity vector per candidate pair.
///
/// Components use the *weighted* soft `simL` with `min_sim = 0.3` so they
/// stay graded (see `remp_simil::sim_l_weighted`); `literal_threshold`
/// only caps the floor of the internal match filter. Component `i`
/// corresponds to `alignment.pairs[i]`; pairs where neither entity
/// carries the attribute score 0.0.
///
/// Each entity's values under each aligned attribute are *prepared*
/// (tokenised, numeric-parsed) exactly once up front — an entity appears
/// in many candidate pairs, and re-normalising its text per pair used to
/// dominate this stage. `sim_l_weighted_prepared` is bit-identical to the
/// unprepared form, so outputs are unchanged.
///
/// Every pair's vector is independent, so the computation is data-parallel
/// under `par`; the output order is the candidate order in every mode.
pub fn build_sim_vectors(
    kb1: &Kb,
    kb2: &Kb,
    candidates: &Candidates,
    alignment: &AttrAlignment,
    literal_threshold: f64,
    par: &Parallelism,
) -> Vec<SimVec> {
    let _ = literal_threshold;
    // entity → alignment index → prepared values of that attribute.
    let prepare = |kb: &Kb, side: usize| -> Vec<Vec<Vec<PreparedLiteral>>> {
        let ids: Vec<u32> = (0..kb.num_entities() as u32).collect();
        par.par_map(&ids, |&e| {
            alignment
                .pairs
                .iter()
                .map(|&(a1, a2, _)| {
                    let attr = if side == 0 { a1 } else { a2 };
                    kb.attr_values(EntityId(e), attr).map(PreparedLiteral::new).collect()
                })
                .collect()
        })
    };
    let prep1 = prepare(kb1, 0);
    let prep2 = prepare(kb2, 1);
    let pairs: Vec<(EntityId, EntityId)> = candidates.iter().map(|(_, p)| p).collect();
    par.par_map(&pairs, |&(u1, u2)| {
        let rows1 = &prep1[u1.index()];
        let rows2 = &prep2[u2.index()];
        let components =
            rows1.iter().zip(rows2).map(|(n1, n2)| sim_l_weighted_prepared(n1, n2, 0.3)).collect();
        SimVec::new(components)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_candidates, initial_matches, match_attributes, AttrMatchConfig};
    use remp_kb::{KbBuilder, Value};

    #[test]
    fn vectors_reflect_value_agreement() {
        let mut b1 = KbBuilder::new("kb1");
        let mut b2 = KbBuilder::new("kb2");
        let a1 = b1.add_attr("name");
        let a2 = b2.add_attr("title");
        // Seeds to align name↔title.
        for i in 0..4 {
            let label = format!("seed {i}");
            let e1 = b1.add_entity(label.clone());
            let e2 = b2.add_entity(label);
            b1.add_attr_triple(e1, a1, Value::text(format!("same {i}")));
            b2.add_attr_triple(e2, a2, Value::text(format!("same {i}")));
        }
        // One agreeing pair, one disagreeing pair.
        let good1 = b1.add_entity("good item");
        let good2 = b2.add_entity("good item thing");
        b1.add_attr_triple(good1, a1, Value::text("shared value"));
        b2.add_attr_triple(good2, a2, Value::text("shared value"));
        let bad1 = b1.add_entity("bad item");
        let bad2 = b2.add_entity("bad item thing");
        b1.add_attr_triple(bad1, a1, Value::text("completely different"));
        b2.add_attr_triple(bad2, a2, Value::text("nothing alike"));

        let kb1 = b1.finish();
        let kb2 = b2.finish();
        let cands = generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        let init = initial_matches(&kb1, &kb2, &cands);
        let al = match_attributes(&kb1, &kb2, &cands, &init, &AttrMatchConfig::default());
        assert_eq!(al.len(), 1);
        let vecs = build_sim_vectors(&kb1, &kb2, &cands, &al, 0.9, &Parallelism::Sequential);
        assert_eq!(vecs.len(), cands.len());

        let good = cands.id_of((good1, good2)).unwrap();
        let bad = cands.id_of((bad1, bad2)).unwrap();
        assert_eq!(vecs[good.index()].components(), &[1.0]);
        assert_eq!(vecs[bad.index()].components(), &[0.0]);
        // Graded case: partial token overlap yields a fractional component.
    }

    #[test]
    fn missing_attribute_scores_zero() {
        let mut b1 = KbBuilder::new("kb1");
        let mut b2 = KbBuilder::new("kb2");
        let a1 = b1.add_attr("name");
        let a2 = b2.add_attr("title");
        for i in 0..3 {
            let label = format!("seed {i}");
            let e1 = b1.add_entity(label.clone());
            let e2 = b2.add_entity(label);
            b1.add_attr_triple(e1, a1, Value::text(format!("v{i}")));
            b2.add_attr_triple(e2, a2, Value::text(format!("v{i}")));
        }
        let bare1 = b1.add_entity("bare pair");
        let _bare2 = b2.add_entity("bare pair");
        let _ = bare1;
        let kb1 = b1.finish();
        let kb2 = b2.finish();
        let cands = generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        let init = initial_matches(&kb1, &kb2, &cands);
        let al = match_attributes(&kb1, &kb2, &cands, &init, &AttrMatchConfig::default());
        let vecs = build_sim_vectors(&kb1, &kb2, &cands, &al, 0.9, &Parallelism::Sequential);
        let bare = cands.id_of((bare1, remp_kb::EntityId(3))).unwrap();
        assert_eq!(vecs[bare.index()].components(), &[0.0]);
    }

    #[test]
    fn empty_alignment_gives_empty_vectors() {
        let mut b1 = KbBuilder::new("kb1");
        let mut b2 = KbBuilder::new("kb2");
        b1.add_entity("x");
        b2.add_entity("x");
        let kb1 = b1.finish();
        let kb2 = b2.finish();
        let cands = generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        let vecs = build_sim_vectors(
            &kb1,
            &kb2,
            &cands,
            &AttrAlignment::default(),
            0.9,
            &Parallelism::Sequential,
        );
        assert!(vecs.iter().all(|v| v.is_empty()));
    }
}
