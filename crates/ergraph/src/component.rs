//! Connected-component index over the ER graph.
//!
//! Relational match propagation can never cross a connected component of
//! the ER graph: probabilistic edges are a subset of ER-graph adjacency,
//! and the adjacency is materialised in both orientations, so the
//! undirected components bound every inferred set, every propagation
//! path, and every selection interaction. The incremental loop engine
//! (`remp_propagation::LoopState`) leans on this to recompute only the
//! components where evidence actually changed and to retire components
//! whose pairs are all resolved.

use std::collections::HashMap;

use crate::{ErGraph, PairId};

/// A partition of the ER-graph vertices into undirected connected
/// components, with a stable ordering:
///
/// * component ids are assigned in order of each component's smallest
///   vertex id (component 0 contains vertex 0);
/// * each member list is sorted ascending.
///
/// Both properties are load-bearing for the incremental engine: iterating
/// components, or the members of one component, visits pairs in exactly
/// the order the from-scratch pipeline does, which keeps incremental
/// recomputation bit-identical to full rebuilds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentIndex {
    comp_of: Vec<u32>,
    members: Vec<Vec<PairId>>,
}

impl ComponentIndex {
    /// Builds the index over `graph`'s undirected connected components.
    pub fn build(graph: &ErGraph) -> ComponentIndex {
        let (comp, _) = graph.connected_components();
        ComponentIndex::from_assignments(&comp)
    }

    /// Builds the index from an explicit vertex → group assignment
    /// (tests, alternative graph sources). Group keys are arbitrary —
    /// dense, sparse, or hash-derived; they are relabelled into the
    /// stable ordering described above.
    pub fn from_assignments(assignments: &[usize]) -> ComponentIndex {
        let mut relabel: HashMap<usize, u32> = HashMap::new();
        let mut members: Vec<Vec<PairId>> = Vec::new();
        let mut comp_of = Vec::with_capacity(assignments.len());
        for (v, &raw) in assignments.iter().enumerate() {
            let c = *relabel.entry(raw).or_insert_with(|| {
                members.push(Vec::new());
                (members.len() - 1) as u32
            });
            comp_of.push(c);
            members[c as usize].push(PairId::from_index(v));
        }
        ComponentIndex { comp_of, members }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the graph had no vertices.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.comp_of.len()
    }

    /// The component id of a vertex.
    pub fn component_of(&self, v: PairId) -> usize {
        self.comp_of[v.index()] as usize
    }

    /// The vertices of component `c`, sorted ascending.
    pub fn members(&self, c: usize) -> &[PairId] {
        &self.members[c]
    }

    /// Iterates `(component id, members)` in component order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[PairId])> {
        self.members.iter().enumerate().map(|(c, m)| (c, m.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_kb::{Kb, KbBuilder};
    use remp_par::Parallelism;

    /// Two disjoint relational clusters plus one isolated entity, mirrored
    /// across both KBs so every candidate pair is an exact-label pair.
    fn disjoint_clusters() -> (Kb, Kb) {
        let mut b1 = KbBuilder::new("a");
        let mut b2 = KbBuilder::new("b");
        let r1 = b1.add_rel("linked");
        let r2 = b2.add_rel("linked");
        for (b, r) in [(&mut b1, r1), (&mut b2, r2)] {
            let u = b.add_entity("alpha");
            let v = b.add_entity("beta");
            let x = b.add_entity("gamma");
            let y = b.add_entity("delta");
            b.add_entity("loner");
            b.add_rel_triple(u, r, v);
            b.add_rel_triple(x, r, y);
        }
        (b1.finish(), b2.finish())
    }

    #[test]
    fn components_are_stable_and_cover_all_vertices() {
        let (kb1, kb2) = disjoint_clusters();
        let cands = crate::generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        let graph = ErGraph::build(&kb1, &kb2, &cands);
        let index = ComponentIndex::build(&graph);

        assert_eq!(index.num_vertices(), graph.num_vertices());
        let total: usize = index.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, graph.num_vertices());

        // Component ids follow smallest-member order; member lists ascend.
        let mut smallest_seen = None;
        for (c, members) in index.iter() {
            assert!(!members.is_empty(), "component {c} is empty");
            assert!(members.windows(2).all(|w| w[0] < w[1]), "members must ascend");
            let head = members[0];
            if let Some(prev) = smallest_seen {
                assert!(head > prev, "component ids must follow smallest members");
            }
            smallest_seen = Some(head);
            for &v in members {
                assert_eq!(index.component_of(v), c);
            }
        }
    }

    #[test]
    fn from_assignments_accepts_sparse_keys() {
        // Group keys are arbitrary: sparse or hash-derived keys must not
        // drive allocation. Relabelling follows first appearance, which
        // for vertex-ordered input is the smallest-member ordering.
        let index = ComponentIndex::from_assignments(&[usize::MAX, 7, usize::MAX, 1 << 40]);
        assert_eq!(index.len(), 3);
        assert_eq!(index.component_of(PairId(0)), 0);
        assert_eq!(index.component_of(PairId(2)), 0);
        assert_eq!(index.members(1), &[PairId(1)]);
        assert_eq!(index.members(2), &[PairId(3)]);
    }

    #[test]
    fn edges_never_cross_components() {
        let (kb1, kb2) = disjoint_clusters();
        let cands = crate::generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        let graph = ErGraph::build(&kb1, &kb2, &cands);
        let index = ComponentIndex::build(&graph);
        assert!(index.len() >= 2, "disjoint clusters must split");
        for (v, _) in cands.iter() {
            for &(_, w) in graph.edges_from(v) {
                assert_eq!(index.component_of(v), index.component_of(w));
            }
        }
        // The isolated exact-label pair sits alone in its component.
        let loner = cands
            .iter()
            .find(|&(p, _)| graph.is_isolated_vertex(p))
            .map(|(p, _)| p)
            .expect("the loner pair is isolated");
        assert_eq!(index.members(index.component_of(loner)), &[loner]);
    }
}
