//! Identifier of a candidate entity pair.

use std::fmt;

/// Index of an entity pair within a [`crate::Candidates`] set.
///
/// Pair ids are dense, so per-pair data (priors, similarity vectors,
/// resolution state, graph adjacency) lives in plain vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairId(pub u32);

impl PairId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a `usize` index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "pair id overflow");
        PairId(index as u32)
    }
}

impl fmt::Debug for PairId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PairId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(PairId::from_index(3).index(), 3);
        assert_eq!(PairId(3).to_string(), "p3");
    }
}
