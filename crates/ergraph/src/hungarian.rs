//! Hungarian (Kuhn–Munkres) algorithm for maximum-weight 1:1 assignment,
//! used by the global attribute-matching constraint (paper §IV-C).

/// Solves the maximum-weight assignment on a `n × m` weight matrix.
///
/// Returns, for each row, the assigned column (or `None`). Unassigned cells
/// behave as weight 0, so the optimum never assigns a negative-gain pair —
/// callers can therefore pass raw similarities and post-filter with a
/// minimum-similarity threshold.
///
/// Runs the O(max(n,m)³) potential-based Jonker–Volgenant variant on the
/// implicitly padded square matrix.
pub fn hungarian_max_assignment(weights: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let m = weights[0].len();
    debug_assert!(weights.iter().all(|row| row.len() == m), "ragged weight matrix");
    if m == 0 {
        return vec![None; n];
    }
    let size = n.max(m);

    // Minimisation form on cost = max_w − w, padded with cost = max_w
    // (equivalent to weight 0 after the shift).
    let max_w = weights.iter().flat_map(|r| r.iter().copied()).fold(0.0f64, f64::max).max(0.0);
    let cost = |i: usize, j: usize| -> f64 {
        if i < n && j < m {
            max_w - weights[i][j].max(0.0)
        } else {
            max_w
        }
    };

    // Standard JV: potentials u, v; p[j] = row matched to column j.
    // 1-based arrays with column 0 as the virtual source.
    let mut u = vec![0.0f64; size + 1];
    let mut v = vec![0.0f64; size + 1];
    let mut p = vec![0usize; size + 1]; // p[j]: row assigned to col j (1-based; 0 = free)
    let mut way = vec![0usize; size + 1];

    for i in 1..=size {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; size + 1];
        let mut used = vec![false; size + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=size {
                if used[j] {
                    continue;
                }
                let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=size {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![None; n];
    for (j, &i) in p.iter().enumerate().take(size + 1).skip(1) {
        if i >= 1 && i <= n && j <= m {
            assignment[i - 1] = Some(j - 1);
        }
    }
    assignment
}

/// Total weight of an assignment (helper for tests and diagnostics).
#[cfg(test)]
pub(crate) fn assignment_weight(weights: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment.iter().enumerate().filter_map(|(i, &j)| j.map(|j| weights[i][j])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_matrix() {
        assert!(hungarian_max_assignment(&[]).is_empty());
        assert_eq!(hungarian_max_assignment(&[vec![], vec![]]), vec![None, None]);
    }

    #[test]
    fn identity_is_optimal() {
        let w = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(hungarian_max_assignment(&w), vec![Some(0), Some(1)]);
    }

    #[test]
    fn anti_diagonal() {
        let w = vec![vec![0.1, 0.9], vec![0.8, 0.2]];
        assert_eq!(hungarian_max_assignment(&w), vec![Some(1), Some(0)]);
    }

    #[test]
    fn greedy_suboptimal_case() {
        // Greedy would take (0,0)=0.9 then (1,1)=0.1 → 1.0; optimal is
        // (0,1)=0.8 + (1,0)=0.8 → 1.6.
        let w = vec![vec![0.9, 0.8], vec![0.8, 0.1]];
        let a = hungarian_max_assignment(&w);
        assert!((assignment_weight(&w, &a) - 1.6).abs() < 1e-9);
    }

    #[test]
    fn rectangular_more_rows() {
        let w = vec![vec![0.5], vec![0.9], vec![0.1]];
        let a = hungarian_max_assignment(&w);
        assert_eq!(a.iter().flatten().count(), 1);
        assert_eq!(a[1], Some(0));
    }

    #[test]
    fn rectangular_more_cols() {
        let w = vec![vec![0.1, 0.9, 0.5]];
        assert_eq!(hungarian_max_assignment(&w), vec![Some(1)]);
    }

    /// Exhaustive optimal assignment for small matrices.
    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        let n = weights.len();
        let m = weights.first().map_or(0, Vec::len);
        fn rec(weights: &[Vec<f64>], i: usize, used: &mut Vec<bool>) -> f64 {
            if i == weights.len() {
                return 0.0;
            }
            // Option 1: leave row i unassigned.
            let mut best = rec(weights, i + 1, used);
            for j in 0..used.len() {
                if !used[j] {
                    used[j] = true;
                    best = best.max(weights[i][j] + rec(weights, i + 1, used));
                    used[j] = false;
                }
            }
            best
        }
        let mut used = vec![false; m];
        let _ = n;
        rec(weights, 0, &mut used)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn optimal_vs_brute_force(
            rows in 1usize..5,
            cols in 1usize..5,
            seed in proptest::collection::vec(0.0f64..1.0, 25)
        ) {
            let w: Vec<Vec<f64>> = (0..rows)
                .map(|i| (0..cols).map(|j| seed[i * 5 + j]).collect())
                .collect();
            let a = hungarian_max_assignment(&w);
            // 1:1 check
            let mut cols_used = std::collections::HashSet::new();
            for j in a.iter().flatten() {
                prop_assert!(cols_used.insert(*j), "column used twice");
            }
            let got = assignment_weight(&w, &a);
            let best = brute_force(&w);
            prop_assert!((got - best).abs() < 1e-9, "got {got}, best {best}");
        }
    }
}
