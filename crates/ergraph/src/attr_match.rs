//! Attribute matching (paper §IV-C, Eq. 1).
//!
//! Attribute similarity is the average `simL` of the two attributes' value
//! sets across the initial entity matches `M_in`, skipping matches where
//! neither entity has a value. A global 1:1 constraint — standard in
//! ontology matching — is enforced with the Hungarian algorithm.

use remp_kb::{AttrId, EntityId, Kb, Value};
use remp_simil::sim_l;

use crate::{hungarian_max_assignment, Candidates, PairId};

/// Configuration for [`match_attributes`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttrMatchConfig {
    /// Internal `simL` literal-similarity threshold (paper: 0.9).
    pub literal_threshold: f64,
    /// Minimum `simA` for an attribute pair to be eligible at all.
    pub min_similarity: f64,
    /// Enforce the global 1:1 matching constraint (Hungarian). Disabling
    /// reproduces the "Remp w/o 1:1 matching" ablation of Table IV, where
    /// each attribute greedily takes every counterpart above
    /// `min_similarity` it is the best partner of.
    pub one_to_one: bool,
}

impl Default for AttrMatchConfig {
    fn default() -> Self {
        AttrMatchConfig { literal_threshold: 0.9, min_similarity: 0.2, one_to_one: true }
    }
}

/// The attribute alignment `M_at`: matched attribute pairs with their
/// similarity, ordered deterministically. Its length fixes the dimension of
/// all similarity vectors.
#[derive(Clone, Debug, Default)]
pub struct AttrAlignment {
    /// `(a1, a2, simA)` entries sorted by `(a1, a2)`.
    pub pairs: Vec<(AttrId, AttrId, f64)>,
}

impl AttrAlignment {
    /// Number of attribute matches `|M_at|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no attributes matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Looks up the KB2 counterpart of a KB1 attribute.
    pub fn counterpart(&self, a1: AttrId) -> Option<AttrId> {
        self.pairs.iter().find(|(x, _, _)| *x == a1).map(|&(_, a2, _)| a2)
    }

    /// True if `(a1, a2)` is in the alignment.
    pub fn contains(&self, a1: AttrId, a2: AttrId) -> bool {
        self.pairs.iter().any(|&(x, y, _)| x == a1 && y == a2)
    }
}

/// Computes the attribute similarity matrix `simA` (Eq. 1) over `M_in`.
///
/// `simA(a1, a2) = Σ_{(u1,u2) ∈ M_in} simL(N_{u1}^{a1}, N_{u2}^{a2}) /
/// |{(u1,u2) ∈ M_in : N_{u1}^{a1} ∪ N_{u2}^{a2} ≠ ∅}|`.
fn attr_similarity_matrix(
    kb1: &Kb,
    kb2: &Kb,
    candidates: &Candidates,
    initial: &[PairId],
    literal_threshold: f64,
) -> Vec<Vec<f64>> {
    let (n1, n2) = (kb1.num_attrs(), kb2.num_attrs());
    let mut sum = vec![vec![0.0f64; n2]; n1];
    let mut cnt = vec![vec![0usize; n2]; n1];

    // Collect each entity's values grouped per attribute once per pair.
    let values_of = |kb: &Kb, u: EntityId| -> Vec<(AttrId, Vec<Value>)> {
        let mut out: Vec<(AttrId, Vec<Value>)> = Vec::new();
        for (a, v) in kb.attrs_of(u) {
            match out.last_mut() {
                Some((last, vals)) if last == a => vals.push(v.clone()),
                _ => out.push((*a, vec![v.clone()])),
            }
        }
        out
    };

    for &pid in initial {
        let (u1, u2) = candidates.pair(pid);
        let vals1 = values_of(kb1, u1);
        let vals2 = values_of(kb2, u2);
        // Every (a1, a2) where at least one side has values counts in the
        // denominator; simL is nonzero only when both sides have values.
        for (a1, n_a1) in &vals1 {
            for a2 in kb2.attrs() {
                let n_a2 = vals2.iter().find(|(a, _)| *a == a2).map(|(_, v)| v.as_slice());
                cnt[a1.index()][a2.index()] += 1;
                if let Some(n_a2) = n_a2 {
                    sum[a1.index()][a2.index()] += sim_l(n_a1, n_a2, literal_threshold);
                }
            }
        }
        // Pairs where only KB2 has values still count in the denominator.
        for (a2, _) in &vals2 {
            for a1 in kb1.attrs() {
                if vals1.iter().any(|(a, _)| a == &a1) {
                    continue; // already counted above
                }
                cnt[a1.index()][a2.index()] += 1;
            }
        }
    }

    (0..n1)
        .map(|i| {
            (0..n2)
                .map(|j| if cnt[i][j] == 0 { 0.0 } else { sum[i][j] / cnt[i][j] as f64 })
                .collect()
        })
        .collect()
}

/// Matches attributes between two KBs (paper §IV-C).
///
/// Uses the initial entity matches `initial ⊆ candidates` as a priori
/// knowledge. With `config.one_to_one` the Hungarian algorithm maximises
/// total similarity under the global 1:1 constraint; without it, every
/// attribute pair above `min_similarity` that is mutually best-ranked on at
/// least one side is kept (the Table IV ablation).
pub fn match_attributes(
    kb1: &Kb,
    kb2: &Kb,
    candidates: &Candidates,
    initial: &[PairId],
    config: &AttrMatchConfig,
) -> AttrAlignment {
    let sim = attr_similarity_matrix(kb1, kb2, candidates, initial, config.literal_threshold);
    let mut pairs: Vec<(AttrId, AttrId, f64)> = Vec::new();

    if sim.is_empty() || sim[0].is_empty() {
        return AttrAlignment::default();
    }

    if config.one_to_one {
        let assignment = hungarian_max_assignment(&sim);
        for (i, j) in assignment.into_iter().enumerate() {
            if let Some(j) = j {
                if sim[i][j] >= config.min_similarity {
                    pairs.push((AttrId::from_index(i), AttrId::from_index(j), sim[i][j]));
                }
            }
        }
    } else {
        // Without the 1:1 constraint: every pair above the similarity
        // threshold is kept — many-to-many, as the Table IV ablation
        // intends (precision drops, recall can rise).
        for (i, row) in sim.iter().enumerate() {
            for (j, &s) in row.iter().enumerate() {
                if s >= config.min_similarity {
                    pairs.push((AttrId::from_index(i), AttrId::from_index(j), s));
                }
            }
        }
    }

    pairs.sort_by_key(|&(a1, a2, _)| (a1, a2));
    AttrAlignment { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_candidates;
    use remp_kb::KbBuilder;
    use remp_par::Parallelism;

    /// Two KBs with three attributes each; `name↔title`, `year↔released`
    /// share values on the seed matches; `junk` matches nothing.
    fn setup() -> (Kb, Kb, Candidates, Vec<PairId>) {
        let mut b1 = KbBuilder::new("kb1");
        let mut b2 = KbBuilder::new("kb2");
        let name = b1.add_attr("name");
        let year = b1.add_attr("year");
        let junk1 = b1.add_attr("junk1");
        let title = b2.add_attr("title");
        let released = b2.add_attr("released");
        let junk2 = b2.add_attr("junk2");
        for i in 0..6 {
            let label = format!("entity number {i}");
            let e1 = b1.add_entity(label.clone());
            let e2 = b2.add_entity(label);
            b1.add_attr_triple(e1, name, Value::text(format!("thing {i}")));
            b2.add_attr_triple(e2, title, Value::text(format!("thing {i}")));
            b1.add_attr_triple(e1, year, Value::number(1990.0 + i as f64));
            b2.add_attr_triple(e2, released, Value::number(1990.0 + i as f64));
            b1.add_attr_triple(e1, junk1, Value::text(format!("aaa{i}")));
            b2.add_attr_triple(e2, junk2, Value::text(format!("zzz{i}")));
        }
        let kb1 = b1.finish();
        let kb2 = b2.finish();
        let cands = generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        let init = crate::initial_matches(&kb1, &kb2, &cands);
        (kb1, kb2, cands, init)
    }

    #[test]
    fn finds_true_attribute_matches() {
        let (kb1, kb2, cands, init) = setup();
        assert_eq!(init.len(), 6);
        let al = match_attributes(&kb1, &kb2, &cands, &init, &AttrMatchConfig::default());
        assert!(al.contains(AttrId(0), AttrId(0)), "name ↔ title: {:?}", al.pairs);
        assert!(al.contains(AttrId(1), AttrId(1)), "year ↔ released: {:?}", al.pairs);
        assert!(!al.contains(AttrId(2), AttrId(2)), "junk must not match");
    }

    #[test]
    fn one_to_one_is_injective() {
        let (kb1, kb2, cands, init) = setup();
        let al = match_attributes(&kb1, &kb2, &cands, &init, &AttrMatchConfig::default());
        let mut left: Vec<_> = al.pairs.iter().map(|p| p.0).collect();
        let mut right: Vec<_> = al.pairs.iter().map(|p| p.1).collect();
        left.dedup();
        right.sort();
        right.dedup();
        assert_eq!(left.len(), al.pairs.len());
        assert_eq!(right.len(), al.pairs.len());
    }

    #[test]
    fn without_one_to_one_can_be_many_to_many() {
        // Make two KB1 attributes both similar to one KB2 attribute.
        let mut b1 = KbBuilder::new("kb1");
        let mut b2 = KbBuilder::new("kb2");
        let a1a = b1.add_attr("first");
        let a1b = b1.add_attr("second");
        let a2 = b2.add_attr("merged");
        for i in 0..4 {
            let label = format!("seed {i}");
            let e1 = b1.add_entity(label.clone());
            let e2 = b2.add_entity(label);
            b1.add_attr_triple(e1, a1a, Value::text(format!("val {i}")));
            b1.add_attr_triple(e1, a1b, Value::text(format!("val {i}")));
            b2.add_attr_triple(e2, a2, Value::text(format!("val {i}")));
        }
        let kb1 = b1.finish();
        let kb2 = b2.finish();
        let cands = generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        let init = crate::initial_matches(&kb1, &kb2, &cands);

        let strict = match_attributes(&kb1, &kb2, &cands, &init, &AttrMatchConfig::default());
        assert_eq!(strict.len(), 1, "1:1 keeps only one of the contenders");

        let loose = match_attributes(
            &kb1,
            &kb2,
            &cands,
            &init,
            &AttrMatchConfig { one_to_one: false, ..AttrMatchConfig::default() },
        );
        assert_eq!(loose.len(), 2, "ablation keeps both: {:?}", loose.pairs);
    }

    #[test]
    fn empty_initial_matches_yield_empty_alignment() {
        let (kb1, kb2, cands, _) = setup();
        let al = match_attributes(&kb1, &kb2, &cands, &[], &AttrMatchConfig::default());
        assert!(al.is_empty());
    }

    #[test]
    fn counterpart_lookup() {
        let (kb1, kb2, cands, init) = setup();
        let al = match_attributes(&kb1, &kb2, &cands, &init, &AttrMatchConfig::default());
        assert_eq!(al.counterpart(AttrId(0)), Some(AttrId(0)));
        assert_eq!(al.counterpart(AttrId(2)), None);
    }
}
