//! ER-graph construction (paper §IV).
//!
//! The first stage of Remp turns two KBs into a small *ER graph* whose
//! vertices are candidate entity pairs and whose labeled edges mirror
//! relationship triples on both sides:
//!
//! 1. [`generate_candidates`] — token-blocked label-Jaccard candidate
//!    generation; similarities double as prior match probabilities (§IV-B).
//! 2. [`initial_matches`] — exact-label seed matches `M_in` used as a priori
//!    knowledge for attribute and relationship matching (§IV-C).
//! 3. [`match_attributes`] — value-based attribute similarity (Eq. 1) with a
//!    global 1:1 constraint solved by the [`hungarian_max_assignment`]
//!    algorithm.
//! 4. [`build_sim_vectors`] — per-pair similarity vectors over the attribute
//!    alignment (§IV-D).
//! 5. [`prune`] — partial-order based k-NN pruning, Algorithm 1 / Eq. 2.
//! 6. [`ErGraph::build`] — the directed, edge-labeled multigraph over the
//!    retained pairs (Definition 2), with reverse orientations materialised
//!    so match propagation can flow against triple direction (as in the
//!    paper's Fig. 1, where e.g. `directedBy` evidence flows movie→person
//!    and person→movie).

mod attr_match;
mod candidates;
mod component;
mod graph;
mod hungarian;
mod monotone;
mod pair;
mod prune;
mod simvecs;

pub use attr_match::{match_attributes, AttrAlignment, AttrMatchConfig};
pub use candidates::{generate_candidates, initial_matches, Candidates};
pub use component::ComponentIndex;
pub use graph::{Direction, EdgeLabel, ErGraph, RelPairId};
pub use hungarian::hungarian_max_assignment;
pub use monotone::monotone_error_rate;
pub use pair::PairId;
pub use prune::{min_rank, prune, prune_one_way, Side};
pub use simvecs::build_sim_vectors;
