//! Error rate of the optimal monotone classifier (Tao, PODS'18 [15]),
//! used by Table V to quantify how well the partial order separates
//! matches from non-matches.
//!
//! A monotone classifier `h` satisfies `s ⪰ s' ⟹ h(s) ≥ h(s')`. Ground
//! truth violates monotonicity whenever a true *non-match* weakly dominates
//! a true *match*; any monotone classifier must misclassify at least one
//! endpoint of every such violation. The minimum number of misclassified
//! pairs therefore equals the minimum vertex cover of the bipartite
//! violation graph, which by Kőnig's theorem equals its maximum matching.
//!
//! Like Remp's pruning, the partial order is only trusted *within blocks*
//! (pairs sharing an entity) — the paper credits its near-perfect error
//! rates to exactly this restriction, so violations are only counted
//! between pairs sharing an entity.

use std::collections::HashSet;

use remp_simil::{max_bipartite_matching, SimVec};

use crate::{Candidates, PairId};

/// Error rate of the optimal monotone classifier over the given pairs.
///
/// `labels[i]` is the ground truth of `pairs[i]` (`true` = match). Only
/// violations between pairs sharing an entity are counted (see module
/// docs). Returns `cover / pairs.len()`, or 0.0 for empty input.
pub fn monotone_error_rate(
    candidates: &Candidates,
    vectors: &[SimVec],
    pairs: &[PairId],
    labels: &[bool],
) -> f64 {
    assert_eq!(pairs.len(), labels.len(), "one label per pair required");
    if pairs.is_empty() {
        return 0.0;
    }

    // Split into matches (left side) and non-matches (right side).
    let mut left = Vec::new(); // indexes into `pairs` that are matches
    let mut right = Vec::new();
    let mut left_pos = vec![usize::MAX; pairs.len()];
    let mut right_pos = vec![usize::MAX; pairs.len()];
    for (i, &is_match) in labels.iter().enumerate() {
        if is_match {
            left_pos[i] = left.len();
            left.push(i);
        } else {
            right_pos[i] = right.len();
            right.push(i);
        }
    }

    // Violation edges: non-match q weakly dominates match p, q and p share
    // an entity. Enumerate via the candidate blocks to stay near-linear.
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    let in_scope: std::collections::HashMap<PairId, usize> =
        pairs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    for (i, &pid) in pairs.iter().enumerate() {
        if !labels[i] {
            continue; // only start from matches
        }
        let (u1, u2) = candidates.pair(pid);
        let block = candidates.with_left(u1).iter().chain(candidates.with_right(u2));
        for &other in block {
            let Some(&j) = in_scope.get(&other) else { continue };
            if labels[j] || j == i {
                continue;
            }
            if vectors[other.index()].weakly_dominates(&vectors[pid.index()]) {
                edges.insert((left_pos[i], right_pos[j]));
            }
        }
    }

    if edges.is_empty() {
        return 0.0;
    }
    let edge_list: Vec<(usize, usize)> = edges.into_iter().collect();
    let cover = max_bipartite_matching(left.len(), right.len(), &edge_list);
    cover as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_kb::EntityId;

    fn setup(pairs: &[(u32, u32)], comps: &[&[f64]]) -> (Candidates, Vec<SimVec>) {
        let c =
            Candidates::from_pairs(pairs.iter().map(|&(l, r)| ((EntityId(l), EntityId(r)), 0.5)));
        let v = comps.iter().map(|s| SimVec::new(s.to_vec())).collect();
        (c, v)
    }

    #[test]
    fn perfectly_monotone_labels_have_zero_error() {
        let (c, v) = setup(&[(0, 0), (0, 1)], &[&[0.9], &[0.1]]);
        let pairs: Vec<PairId> = c.ids().collect();
        let e = monotone_error_rate(&c, &v, &pairs, &[true, false]);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn single_violation_costs_one() {
        // Non-match dominates match within the same block.
        let (c, v) = setup(&[(0, 0), (0, 1)], &[&[0.1], &[0.9]]);
        let pairs: Vec<PairId> = c.ids().collect();
        let e = monotone_error_rate(&c, &v, &pairs, &[true, false]);
        assert!((e - 0.5).abs() < 1e-12, "1 of 2 pairs misclassified");
    }

    #[test]
    fn violations_across_blocks_ignored() {
        // Same vectors but disjoint entities: the restricted partial order
        // does not compare them.
        let (c, v) = setup(&[(0, 0), (1, 1)], &[&[0.1], &[0.9]]);
        let pairs: Vec<PairId> = c.ids().collect();
        let e = monotone_error_rate(&c, &v, &pairs, &[true, false]);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn shared_non_match_covered_once() {
        // One dominating non-match violates two matches → min cover = 1.
        let (c, v) = setup(&[(0, 0), (0, 1), (0, 2)], &[&[0.2], &[0.3], &[0.9]]);
        let pairs: Vec<PairId> = c.ids().collect();
        let e = monotone_error_rate(&c, &v, &pairs, &[true, true, false]);
        assert!((e - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let (c, v) = setup(&[], &[]);
        assert_eq!(monotone_error_rate(&c, &v, &[], &[]), 0.0);
    }

    #[test]
    fn equal_vectors_conflicting_labels_violate() {
        let (c, v) = setup(&[(0, 0), (0, 1)], &[&[0.5], &[0.5]]);
        let pairs: Vec<PairId> = c.ids().collect();
        let e = monotone_error_rate(&c, &v, &pairs, &[true, false]);
        assert!((e - 0.5).abs() < 1e-12);
    }
}
