//! The ER graph (paper Definition 2): a directed, edge-labeled multigraph
//! whose vertices are entity pairs and whose edges carry relationship
//! pairs.
//!
//! An edge `(u1,u2) → (u'1,u'2)` labeled `(r1, r2)` exists iff
//! `(u1, r1, u'1) ∈ T1` and `(u2, r2, u'2) ∈ T2`. We additionally
//! materialise the *reverse* orientation (label direction
//! [`Direction::Reverse`]) so that propagation can traverse against triple
//! direction — the paper's Fig. 1 relies on this (a labeled movie pair
//! infers its directors through an incoming `directedBy` edge). Formally
//! this equals extending `R` with inverse relationships `r⁻`.

use std::collections::HashMap;

use remp_kb::{Kb, RelId};

use crate::{Candidates, PairId};

/// Traversal orientation of an edge label relative to the original triples.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Along triple direction: subject-pair → object-pair.
    Forward,
    /// Against triple direction: object-pair → subject-pair (i.e. `r⁻`).
    Reverse,
}

impl Direction {
    /// The opposite orientation.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Forward => Direction::Reverse,
            Direction::Reverse => Direction::Forward,
        }
    }
}

/// An edge label: a relationship pair plus its traversal orientation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeLabel {
    /// Relationship from KB1.
    pub r1: RelId,
    /// Relationship from KB2.
    pub r2: RelId,
    /// Orientation of traversal.
    pub dir: Direction,
}

/// Dense id of an [`EdgeLabel`] within one [`ErGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelPairId(pub u32);

impl RelPairId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The ER graph over a candidate set.
#[derive(Clone, Debug)]
pub struct ErGraph {
    labels: Vec<EdgeLabel>,
    label_index: HashMap<EdgeLabel, RelPairId>,
    /// `out[v]` = (label, target) sorted by label id; covers both
    /// orientations, so every undirected adjacency is walkable from both
    /// endpoints.
    out: Vec<Vec<(RelPairId, PairId)>>,
    num_edges: usize,
}

impl ErGraph {
    /// Builds the ER graph over `candidates` from the two KBs
    /// (Definition 2 plus reverse orientations).
    pub fn build(kb1: &Kb, kb2: &Kb, candidates: &Candidates) -> ErGraph {
        let n = candidates.len();
        let mut g = ErGraph {
            labels: Vec::new(),
            label_index: HashMap::new(),
            out: vec![Vec::new(); n],
            num_edges: 0,
        };
        for (v, (u1, u2)) in candidates.iter() {
            for &(r1, o1) in kb1.rels_of(u1) {
                // Candidates containing o1 on the left, joined against u2's
                // outgoing triples.
                for &w in candidates.with_left(o1) {
                    let (_, o2) = candidates.pair(w);
                    for &(r2, t2) in kb2.rels_of(u2) {
                        if t2 == o2 {
                            g.add_edge(v, w, r1, r2);
                        }
                    }
                }
            }
        }
        g.normalise();
        g
    }

    fn intern(&mut self, label: EdgeLabel) -> RelPairId {
        if let Some(&id) = self.label_index.get(&label) {
            return id;
        }
        let id = RelPairId(self.labels.len() as u32);
        self.labels.push(label);
        self.label_index.insert(label, id);
        id
    }

    /// Adds the forward edge `v → w` labeled `(r1, r2)` and its reverse
    /// mirror `w → v`.
    fn add_edge(&mut self, v: PairId, w: PairId, r1: RelId, r2: RelId) {
        let fwd = self.intern(EdgeLabel { r1, r2, dir: Direction::Forward });
        let rev = self.intern(EdgeLabel { r1, r2, dir: Direction::Reverse });
        self.out[v.index()].push((fwd, w));
        self.out[w.index()].push((rev, v));
        self.num_edges += 1;
    }

    /// Number of vertices (= candidate pairs).
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of distinct triple-level edges (each counted once, although
    /// walkable in both orientations).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of interned edge labels (relationship pairs × orientations).
    pub fn num_labels(&self) -> usize {
        self.labels.len()
    }

    /// The label behind an id.
    pub fn label(&self, id: RelPairId) -> EdgeLabel {
        self.labels[id.index()]
    }

    /// Looks up the id of an interned label. Both orientations of a
    /// relationship pair are always interned together, so flipping a
    /// label's [`Direction`] never leaves the interned set.
    pub fn label_id(&self, label: EdgeLabel) -> Option<RelPairId> {
        self.label_index.get(&label).copied()
    }

    /// All interned labels with their ids.
    pub fn labels(&self) -> impl Iterator<Item = (RelPairId, EdgeLabel)> + '_ {
        self.labels.iter().enumerate().map(|(i, &l)| (RelPairId(i as u32), l))
    }

    /// Outgoing adjacency of `v` (both orientations), sorted by label.
    pub fn edges_from(&self, v: PairId) -> &[(RelPairId, PairId)] {
        &self.out[v.index()]
    }

    /// Sorts adjacency lists and removes duplicate parallel edges with the
    /// same label (idempotent; called by [`ErGraph::build`]).
    fn normalise(&mut self) {
        for list in &mut self.out {
            list.sort_unstable();
            list.dedup();
        }
    }

    /// True if `v` has no incident edges.
    pub fn is_isolated_vertex(&self, v: PairId) -> bool {
        self.out[v.index()].is_empty()
    }

    /// Connected components over the undirected view: returns a component
    /// id per vertex and the number of components.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let n = self.num_vertices();
        let mut comp = vec![usize::MAX; n];
        let mut next = 0;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &(_, w) in &self.out[v] {
                    if comp[w.index()] == usize::MAX {
                        comp[w.index()] = next;
                        stack.push(w.index());
                    }
                }
            }
            next += 1;
        }
        (comp, next)
    }
}

impl ErGraph {
    /// Adjacency of `v` grouped by label as owned vectors. Lists are sorted
    /// by label, targets sorted ascending.
    pub fn grouped_from(&self, v: PairId) -> Vec<(RelPairId, Vec<PairId>)> {
        let mut out: Vec<(RelPairId, Vec<PairId>)> = Vec::new();
        for &(label, target) in &self.out[v.index()] {
            match out.last_mut() {
                Some((l, ts)) if *l == label => ts.push(target),
                _ => out.push((label, vec![target])),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_kb::{EntityId, KbBuilder, Value};
    use remp_par::Parallelism;

    /// Mirrors the paper's Fig. 1 fragment: persons acting in movies,
    /// movies directed by persons, persons born in cities.
    fn fig1() -> (Kb, Kb, Candidates) {
        let mut b1 = KbBuilder::new("yago");
        let mut b2 = KbBuilder::new("dbpedia");
        let acted1 = b1.add_rel("actedIn");
        let directed1 = b1.add_rel("directedBy");
        let born1 = b1.add_rel("wasBornIn");
        let acted2 = b2.add_rel("actedIn");
        let directed2 = b2.add_rel("directedBy");
        let born2 = b2.add_rel("birthPlace");

        let name1 = b1.add_attr("label");
        let name2 = b2.add_attr("label");

        let add = |b: &mut KbBuilder, name: &str, a| {
            let e = b.add_entity(name);
            b.add_attr_triple(e, a, Value::text(name));
            e
        };
        let joan1 = add(&mut b1, "Joan", name1);
        let john1 = add(&mut b1, "John", name1);
        let tim1 = add(&mut b1, "Tim", name1);
        let cradle1 = add(&mut b1, "Cradle", name1);
        let player1 = add(&mut b1, "Player", name1);
        let nyc1 = add(&mut b1, "NYC", name1);
        let joan2 = add(&mut b2, "Joan", name2);
        let john2 = add(&mut b2, "John", name2);
        let tim2 = add(&mut b2, "Tim", name2);
        let cradle2 = add(&mut b2, "Cradle", name2);
        let player2 = add(&mut b2, "Player", name2);
        let nyc2 = add(&mut b2, "NYC", name2);

        for (b, acted, directed, born, joan, john, tim, cradle, player, nyc) in [
            (&mut b1, acted1, directed1, born1, joan1, john1, tim1, cradle1, player1, nyc1),
            (&mut b2, acted2, directed2, born2, joan2, john2, tim2, cradle2, player2, nyc2),
        ] {
            b.add_rel_triple(joan, acted, cradle);
            b.add_rel_triple(john, acted, player);
            b.add_rel_triple(cradle, directed, tim);
            b.add_rel_triple(player, directed, tim);
            b.add_rel_triple(joan, born, nyc);
        }

        let kb1 = b1.finish();
        let kb2 = b2.finish();
        let cands = crate::generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        (kb1, kb2, cands)
    }

    #[test]
    fn builds_forward_and_reverse_edges() {
        let (kb1, kb2, cands) = fig1();
        let g = ErGraph::build(&kb1, &kb2, &cands);
        assert!(g.num_edges() >= 5, "expected the 5 mirrored relationship edges");

        let joan = cands.id_of((EntityId(0), EntityId(0))).unwrap();
        let nyc = cands.id_of((EntityId(5), EntityId(5))).unwrap();
        // Forward: joan --wasBornIn/birthPlace--> nyc
        assert!(g
            .edges_from(joan)
            .iter()
            .any(|&(l, t)| t == nyc && g.label(l).dir == Direction::Forward));
        // Reverse: nyc --(wasBornIn/birthPlace)⁻--> joan
        assert!(g
            .edges_from(nyc)
            .iter()
            .any(|&(l, t)| t == joan && g.label(l).dir == Direction::Reverse));
    }

    #[test]
    fn grouped_adjacency_partitions_edges() {
        let (kb1, kb2, cands) = fig1();
        let g = ErGraph::build(&kb1, &kb2, &cands);
        let tim = cands.id_of((EntityId(2), EntityId(2))).unwrap();
        let grouped = g.grouped_from(tim);
        let total: usize = grouped.iter().map(|(_, ts)| ts.len()).sum();
        assert_eq!(total, g.edges_from(tim).len());
        // Tim is the directedBy target of both movies → one reverse label
        // with two targets.
        let rev_group = grouped
            .iter()
            .find(|(l, _)| g.label(*l).dir == Direction::Reverse)
            .expect("tim has reverse directedBy edges");
        assert_eq!(rev_group.1.len(), 2);
    }

    #[test]
    fn connected_components_cover_graph() {
        let (kb1, kb2, cands) = fig1();
        let g = ErGraph::build(&kb1, &kb2, &cands);
        let (comp, n) = g.connected_components();
        assert_eq!(comp.len(), g.num_vertices());
        assert!(n >= 1);
        // All of Fig. 1's pairs are relationally connected into one component.
        let joan = cands.id_of((EntityId(0), EntityId(0))).unwrap();
        let tim = cands.id_of((EntityId(2), EntityId(2))).unwrap();
        assert_eq!(comp[joan.index()], comp[tim.index()]);
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Forward.flip(), Direction::Reverse);
        assert_eq!(Direction::Reverse.flip(), Direction::Forward);
    }

    #[test]
    fn no_edges_for_unrelated_entities() {
        let mut b1 = KbBuilder::new("a");
        let mut b2 = KbBuilder::new("b");
        b1.add_entity("solo");
        b2.add_entity("solo");
        let kb1 = b1.finish();
        let kb2 = b2.finish();
        let cands = crate::generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        let g = ErGraph::build(&kb1, &kb2, &cands);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_isolated_vertex(PairId(0)));
    }
}
