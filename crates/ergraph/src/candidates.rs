//! Candidate entity-match generation (paper §IV-B) and initial matches
//! (§IV-C).

use std::collections::HashMap;

use remp_kb::{EntityId, Kb};
use remp_par::Parallelism;
use remp_simil::{jaccard, normalize_tokens, TokenSet};

use crate::PairId;

/// The candidate entity match set `M_c` with prior match probabilities.
///
/// Vertices of the (un-pruned) ER graph. Label similarities double as prior
/// probabilities `Pr[m_p]` as in the paper ("we use the label similarities
/// as prior match probabilities").
#[derive(Clone, Debug)]
pub struct Candidates {
    pairs: Vec<(EntityId, EntityId)>,
    priors: Vec<f64>,
    index: HashMap<(EntityId, EntityId), PairId>,
    by_left: HashMap<EntityId, Vec<PairId>>,
    by_right: HashMap<EntityId, Vec<PairId>>,
}

impl Candidates {
    /// Builds a candidate set from explicit `(pair, prior)` entries.
    ///
    /// Duplicated pairs keep their first prior.
    pub fn from_pairs(entries: impl IntoIterator<Item = ((EntityId, EntityId), f64)>) -> Self {
        let mut c = Candidates {
            pairs: Vec::new(),
            priors: Vec::new(),
            index: HashMap::new(),
            by_left: HashMap::new(),
            by_right: HashMap::new(),
        };
        for (pair, prior) in entries {
            c.insert(pair, prior);
        }
        c
    }

    fn insert(&mut self, pair: (EntityId, EntityId), prior: f64) -> PairId {
        if let Some(&id) = self.index.get(&pair) {
            return id;
        }
        let id = PairId::from_index(self.pairs.len());
        self.pairs.push(pair);
        self.priors.push(prior.clamp(0.0, 1.0));
        self.index.insert(pair, id);
        self.by_left.entry(pair.0).or_default().push(id);
        self.by_right.entry(pair.1).or_default().push(id);
        id
    }

    /// Number of candidate pairs `|M_c|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The entity pair behind `id`.
    pub fn pair(&self, id: PairId) -> (EntityId, EntityId) {
        self.pairs[id.index()]
    }

    /// Prior match probability `Pr[m_p]`.
    pub fn prior(&self, id: PairId) -> f64 {
        self.priors[id.index()]
    }

    /// All priors, indexed by pair id — the live slice, so per-loop
    /// consumers (question selection, the incremental engine) never need
    /// to materialise their own copy.
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// Overwrites the prior of `id` (used by truth inference to downdate
    /// hard questions, §VII-A).
    pub fn set_prior(&mut self, id: PairId, prior: f64) {
        self.priors[id.index()] = prior.clamp(0.0, 1.0);
    }

    /// Looks up the id of an entity pair.
    pub fn id_of(&self, pair: (EntityId, EntityId)) -> Option<PairId> {
        self.index.get(&pair).copied()
    }

    /// All candidate ids containing `u1` on the left (KB1) side.
    pub fn with_left(&self, u1: EntityId) -> &[PairId] {
        self.by_left.get(&u1).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All candidate ids containing `u2` on the right (KB2) side.
    pub fn with_right(&self, u2: EntityId) -> &[PairId] {
        self.by_right.get(&u2).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all `(id, pair)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (PairId, (EntityId, EntityId))> + '_ {
        self.pairs.iter().enumerate().map(|(i, &p)| (PairId::from_index(i), p))
    }

    /// All pair ids.
    pub fn ids(&self) -> impl Iterator<Item = PairId> {
        (0..self.pairs.len()).map(PairId::from_index)
    }

    /// Restricts the candidate set to `keep`, preserving order and priors.
    /// Returns the new set together with the old→new id mapping.
    pub fn restrict(&self, keep: &[PairId]) -> (Candidates, HashMap<PairId, PairId>) {
        let mut mapping = HashMap::with_capacity(keep.len());
        let mut out = Candidates {
            pairs: Vec::with_capacity(keep.len()),
            priors: Vec::with_capacity(keep.len()),
            index: HashMap::with_capacity(keep.len()),
            by_left: HashMap::new(),
            by_right: HashMap::new(),
        };
        for &old in keep {
            let new = out.insert(self.pair(old), self.prior(old));
            mapping.insert(old, new);
        }
        (out, mapping)
    }
}

/// Generates the candidate entity match set `M_c` (paper §IV-B).
///
/// Labels are normalised ([`normalize_tokens`]); a token-to-entity inverted
/// index over the smaller KB blocks the comparison space to pairs sharing
/// at least one token; surviving pairs keep a Jaccard similarity ≥
/// `threshold` (0.3 in the paper), which becomes the prior `Pr[m_p]`.
///
/// Tokenisation and the per-KB1-entity block scans are data-parallel under
/// `par`; the output is identical for every [`Parallelism`] mode (entries
/// stay in KB1-entity order).
pub fn generate_candidates(kb1: &Kb, kb2: &Kb, threshold: f64, par: &Parallelism) -> Candidates {
    let ids1: Vec<EntityId> = kb1.entities().collect();
    let ids2: Vec<EntityId> = kb2.entities().collect();
    let tokens1: Vec<TokenSet> = par.par_map(&ids1, |&u| normalize_tokens(kb1.label(u)));
    let tokens2: Vec<TokenSet> = par.par_map(&ids2, |&u| normalize_tokens(kb2.label(u)));

    // Inverted index over KB2 tokens.
    let mut inv: HashMap<&str, Vec<EntityId>> = HashMap::new();
    for u2 in kb2.entities() {
        for tok in &tokens2[u2.index()] {
            inv.entry(tok.as_str()).or_default().push(u2);
        }
    }

    // `seen` marks KB2 entities already scored for the current u1 — the
    // marker is u1's id, so a per-worker buffer never needs resetting
    // between entities and stale markers from other chunks cannot alias.
    let per_entity: Vec<Vec<((EntityId, EntityId), f64)>> = par.par_map_with(
        &ids1,
        || vec![u32::MAX; kb2.num_entities()],
        |seen, &u1| {
            let ts1 = &tokens1[u1.index()];
            let mut entries: Vec<((EntityId, EntityId), f64)> = Vec::new();
            for tok in ts1 {
                let Some(cands) = inv.get(tok.as_str()) else { continue };
                for &u2 in cands {
                    if seen[u2.index()] == u1.0 {
                        continue; // already scored for this u1
                    }
                    seen[u2.index()] = u1.0;
                    let sim = jaccard(ts1, &tokens2[u2.index()]);
                    if sim >= threshold {
                        entries.push(((u1, u2), sim));
                    }
                }
            }
            entries
        },
    );
    Candidates::from_pairs(per_entity.into_iter().flatten())
}

/// Extracts the initial entity matches `M_in` (paper §IV-C): candidates
/// whose entities have *exactly* the same label, used as a priori knowledge
/// for attribute/relationship matching (never added to final results
/// directly, as they may contain errors).
pub fn initial_matches(kb1: &Kb, kb2: &Kb, candidates: &Candidates) -> Vec<PairId> {
    candidates
        .iter()
        .filter(|&(_, (u1, u2))| kb1.label(u1) == kb2.label(u2))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_kb::KbBuilder;

    fn kb(name: &str, labels: &[&str]) -> Kb {
        let mut b = KbBuilder::new(name);
        for l in labels {
            b.add_entity(*l);
        }
        b.finish()
    }

    #[test]
    fn generates_pairs_over_threshold() {
        let kb1 = kb("a", &["The Player", "Cradle Will Rock", "Unrelated Thing"]);
        let kb2 = kb("b", &["Player", "Cradle Will Rock", "Something Else"]);
        let c = generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        assert!(c.id_of((EntityId(0), EntityId(0))).is_some(), "player pair kept");
        assert!(c.id_of((EntityId(1), EntityId(1))).is_some(), "cradle pair kept");
        assert!(c.id_of((EntityId(2), EntityId(2))).is_none(), "dissimilar pair dropped");
    }

    #[test]
    fn prior_equals_label_jaccard() {
        let kb1 = kb("a", &["alpha beta"]);
        let kb2 = kb("b", &["alpha gamma"]);
        let c = generate_candidates(&kb1, &kb2, 0.1, &Parallelism::Sequential);
        let id = c.id_of((EntityId(0), EntityId(0))).unwrap();
        assert!((c.prior(id) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_duplicate_pairs_from_shared_tokens() {
        // "alpha beta" shares two tokens with "alpha beta": the pair must
        // appear exactly once.
        let kb1 = kb("a", &["alpha beta"]);
        let kb2 = kb("b", &["alpha beta"]);
        let c = generate_candidates(&kb1, &kb2, 0.1, &Parallelism::Sequential);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn initial_matches_require_exact_labels() {
        let kb1 = kb("a", &["Exact Same", "Close Match"]);
        let kb2 = kb("b", &["Exact Same", "Close  Match"]);
        let c = generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        let init = initial_matches(&kb1, &kb2, &c);
        assert_eq!(init.len(), 1);
        assert_eq!(c.pair(init[0]), (EntityId(0), EntityId(0)));
    }

    #[test]
    fn blocks_index_both_sides() {
        let kb1 = kb("a", &["x y", "x z"]);
        let kb2 = kb("b", &["x y"]);
        let c = generate_candidates(&kb1, &kb2, 0.1, &Parallelism::Sequential);
        assert_eq!(c.with_left(EntityId(0)).len(), 1);
        assert_eq!(c.with_right(EntityId(0)).len(), 2);
    }

    #[test]
    fn restrict_preserves_priors() {
        let kb1 = kb("a", &["a b", "a c"]);
        let kb2 = kb("b", &["a b", "a c"]);
        let c = generate_candidates(&kb1, &kb2, 0.1, &Parallelism::Sequential);
        let keep: Vec<_> = c.ids().take(2).collect();
        let (r, map) = c.restrict(&keep);
        assert_eq!(r.len(), 2);
        for &old in &keep {
            let new = map[&old];
            assert_eq!(r.pair(new), c.pair(old));
            assert_eq!(r.prior(new), c.prior(old));
        }
    }

    #[test]
    fn set_prior_clamps() {
        let kb1 = kb("a", &["a"]);
        let kb2 = kb("b", &["a"]);
        let mut c = generate_candidates(&kb1, &kb2, 0.1, &Parallelism::Sequential);
        let id = c.ids().next().unwrap();
        c.set_prior(id, 1.5);
        assert_eq!(c.prior(id), 1.0);
    }
}
