//! Candidate entity-match generation (paper §IV-B) and initial matches
//! (§IV-C).
//!
//! Storage is the dense-id layout described in `crates/ergraph/LAYOUT.md`:
//! pairs live as packed `u64` keys, the per-entity adjacency is CSR built
//! once per construction, and the only remaining map (packed pair → id)
//! uses the deterministic [`remp_kb::IdHasher`].

use remp_kb::{EntityId, IdHashMap, Kb, PackedPair};
use remp_par::Parallelism;
use remp_simil::{jaccard_ids, normalize_tokens, TokenSet};

use crate::PairId;

/// Sorted CSR adjacency from dense entity ids to the pair ids containing
/// them: `slice(e)` is `adj[offsets[e] .. offsets[e+1]]`.
///
/// Rows are filled in ascending pair-id order, which is exactly the old
/// per-entity `Vec` insertion order — `with_left`/`with_right` return
/// byte-identical slices to the pre-CSR `HashMap<EntityId, Vec<PairId>>`
/// layout, just from one contiguous allocation.
#[derive(Clone, Debug, Default)]
struct CsrIndex {
    offsets: Vec<u32>,
    adj: Vec<PairId>,
}

impl CsrIndex {
    /// Builds the index over `pairs`, keying each pair by `side(pair)`.
    fn build(pairs: &[PackedPair], side: impl Fn(PackedPair) -> EntityId) -> Self {
        let slots = pairs.iter().map(|&p| side(p).index() + 1).max().unwrap_or(0);
        // offsets[e + 1] first accumulates the count for entity e…
        let mut offsets = vec![0u32; slots + 1];
        for &p in pairs {
            offsets[side(p).index() + 1] += 1;
        }
        // …then the prefix sum turns counts into row starts.
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..slots].to_vec();
        let mut adj = vec![PairId(0); pairs.len()];
        for (i, &p) in pairs.iter().enumerate() {
            let slot = side(p).index();
            adj[cursor[slot] as usize] = PairId::from_index(i);
            cursor[slot] += 1;
        }
        CsrIndex { offsets, adj }
    }

    /// The pair ids stored under entity `e` (empty for out-of-range ids).
    #[inline]
    fn slice(&self, e: EntityId) -> &[PairId] {
        let i = e.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.adj[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// The candidate entity match set `M_c` with prior match probabilities.
///
/// Vertices of the (un-pruned) ER graph. Label similarities double as prior
/// probabilities `Pr[m_p]` as in the paper ("we use the label similarities
/// as prior match probabilities").
#[derive(Clone, Debug)]
pub struct Candidates {
    pairs: Vec<PackedPair>,
    priors: Vec<f64>,
    index: IdHashMap<PackedPair, PairId>,
    by_left: CsrIndex,
    by_right: CsrIndex,
}

impl Candidates {
    /// Builds a candidate set from explicit `(pair, prior)` entries.
    ///
    /// Duplicated pairs keep their first prior.
    pub fn from_pairs(entries: impl IntoIterator<Item = ((EntityId, EntityId), f64)>) -> Self {
        let mut pairs: Vec<PackedPair> = Vec::new();
        let mut priors: Vec<f64> = Vec::new();
        let mut index: IdHashMap<PackedPair, PairId> = IdHashMap::default();
        for (pair, prior) in entries {
            let key = PackedPair::from(pair);
            index.entry(key).or_insert_with(|| {
                let id = PairId::from_index(pairs.len());
                pairs.push(key);
                priors.push(prior.clamp(0.0, 1.0));
                id
            });
        }
        Self::finish(pairs, priors, index)
    }

    /// Freezes the builder state: one CSR build per side, done exactly
    /// once per construction (candidate sets are immutable afterwards
    /// except for prior updates).
    fn finish(
        pairs: Vec<PackedPair>,
        priors: Vec<f64>,
        index: IdHashMap<PackedPair, PairId>,
    ) -> Self {
        let by_left = CsrIndex::build(&pairs, PackedPair::left);
        let by_right = CsrIndex::build(&pairs, PackedPair::right);
        Candidates { pairs, priors, index, by_left, by_right }
    }

    /// Number of candidate pairs `|M_c|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The entity pair behind `id`.
    pub fn pair(&self, id: PairId) -> (EntityId, EntityId) {
        self.pairs[id.index()].unpack()
    }

    /// Prior match probability `Pr[m_p]`.
    pub fn prior(&self, id: PairId) -> f64 {
        self.priors[id.index()]
    }

    /// All priors, indexed by pair id — the live slice, so per-loop
    /// consumers (question selection, the incremental engine) never need
    /// to materialise their own copy.
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// Overwrites the prior of `id` (used by truth inference to downdate
    /// hard questions, §VII-A).
    pub fn set_prior(&mut self, id: PairId, prior: f64) {
        self.priors[id.index()] = prior.clamp(0.0, 1.0);
    }

    /// Looks up the id of an entity pair.
    pub fn id_of(&self, pair: (EntityId, EntityId)) -> Option<PairId> {
        self.index.get(&PackedPair::from(pair)).copied()
    }

    /// All candidate ids containing `u1` on the left (KB1) side.
    pub fn with_left(&self, u1: EntityId) -> &[PairId] {
        self.by_left.slice(u1)
    }

    /// All candidate ids containing `u2` on the right (KB2) side.
    pub fn with_right(&self, u2: EntityId) -> &[PairId] {
        self.by_right.slice(u2)
    }

    /// Number of dense left-entity slots the CSR index covers (one past
    /// the highest KB1 entity id appearing in any pair). Consumers that
    /// bucket pairs by entity (pruning) size their own dense arrays with
    /// this instead of re-scanning for the maximum.
    pub fn left_slots(&self) -> usize {
        self.by_left.offsets.len() - 1
    }

    /// Number of dense right-entity slots the CSR index covers.
    pub fn right_slots(&self) -> usize {
        self.by_right.offsets.len() - 1
    }

    /// Iterates over all `(id, pair)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (PairId, (EntityId, EntityId))> + '_ {
        self.pairs.iter().enumerate().map(|(i, &p)| (PairId::from_index(i), p.unpack()))
    }

    /// All pair ids.
    pub fn ids(&self) -> impl Iterator<Item = PairId> {
        (0..self.pairs.len()).map(PairId::from_index)
    }

    /// Restricts the candidate set to `keep`, preserving order and priors.
    /// Returns the new set together with the old→new id mapping.
    ///
    /// Everything is preallocated at `keep.len()` — the result has
    /// exactly that many pairs (fewer only if `keep` repeats ids).
    pub fn restrict(&self, keep: &[PairId]) -> (Candidates, IdHashMap<PairId, PairId>) {
        let mut mapping: IdHashMap<PairId, PairId> =
            IdHashMap::with_capacity_and_hasher(keep.len(), Default::default());
        let mut pairs: Vec<PackedPair> = Vec::with_capacity(keep.len());
        let mut priors: Vec<f64> = Vec::with_capacity(keep.len());
        let mut index: IdHashMap<PackedPair, PairId> =
            IdHashMap::with_capacity_and_hasher(keep.len(), Default::default());
        for &old in keep {
            let key = self.pairs[old.index()];
            let new = *index.entry(key).or_insert_with(|| {
                let id = PairId::from_index(pairs.len());
                pairs.push(key);
                priors.push(self.priors[old.index()]);
                id
            });
            mapping.insert(old, new);
        }
        (Self::finish(pairs, priors, index), mapping)
    }
}

/// Generates the candidate entity match set `M_c` (paper §IV-B).
///
/// Labels are normalised ([`normalize_tokens`]); a token-to-entity inverted
/// index over the smaller KB blocks the comparison space to pairs sharing
/// at least one token; surviving pairs keep a Jaccard similarity ≥
/// `threshold` (0.3 in the paper), which becomes the prior `Pr[m_p]`.
///
/// Internally every token is interned against the lexicographically
/// sorted token universe of both KBs, so the block scans and Jaccard
/// computations run over sorted `u32` slices instead of string sets —
/// same counts, same `f64` sims, no string hashing or comparison in the
/// per-pair loop.
///
/// Tokenisation and the per-KB1-entity block scans are data-parallel under
/// `par`; the output is identical for every [`Parallelism`] mode (entries
/// stay in KB1-entity order).
pub fn generate_candidates(kb1: &Kb, kb2: &Kb, threshold: f64, par: &Parallelism) -> Candidates {
    let ids1: Vec<EntityId> = kb1.entities().collect();
    let ids2: Vec<EntityId> = kb2.entities().collect();
    let tokens1: Vec<TokenSet> = par.par_map(&ids1, |&u| normalize_tokens(kb1.label(u)));
    let tokens2: Vec<TokenSet> = par.par_map(&ids2, |&u| normalize_tokens(kb2.label(u)));

    // The shared token universe, sorted: interning is monotone, so each
    // entity's id list (from a sorted TokenSet) is itself sorted and
    // ascending-id iteration order equals lexicographic token order —
    // the candidate emission order is unchanged from the string layout.
    let mut universe: Vec<&str> =
        tokens1.iter().chain(&tokens2).flatten().map(String::as_str).collect();
    universe.sort_unstable();
    universe.dedup();
    let intern = |ts: &TokenSet| -> Vec<u32> {
        ts.iter()
            .map(|t| universe.binary_search(&t.as_str()).expect("in universe") as u32)
            .collect()
    };
    let toks1: Vec<Vec<u32>> = par.par_map(&ids1, |&u| intern(&tokens1[u.index()]));
    let toks2: Vec<Vec<u32>> = par.par_map(&ids2, |&u| intern(&tokens2[u.index()]));

    // Inverted index over KB2 token ids — dense by token id, entities in
    // ascending KB2 order per row.
    let mut inv: Vec<Vec<EntityId>> = vec![Vec::new(); universe.len()];
    for &u2 in &ids2 {
        for &t in &toks2[u2.index()] {
            inv[t as usize].push(u2);
        }
    }

    // `seen` marks KB2 entities already scored for the current u1 — the
    // marker is u1's id, so a per-worker buffer never needs resetting
    // between entities and stale markers from other chunks cannot alias.
    let per_entity: Vec<Vec<((EntityId, EntityId), f64)>> = par.par_map_with(
        &ids1,
        || vec![u32::MAX; kb2.num_entities()],
        |seen, &u1| {
            let ts1 = &toks1[u1.index()];
            let mut entries: Vec<((EntityId, EntityId), f64)> = Vec::new();
            for &t in ts1 {
                for &u2 in &inv[t as usize] {
                    if seen[u2.index()] == u1.0 {
                        continue; // already scored for this u1
                    }
                    seen[u2.index()] = u1.0;
                    let sim = jaccard_ids(ts1, &toks2[u2.index()]);
                    if sim >= threshold {
                        entries.push(((u1, u2), sim));
                    }
                }
            }
            entries
        },
    );
    Candidates::from_pairs(per_entity.into_iter().flatten())
}

/// Extracts the initial entity matches `M_in` (paper §IV-C): candidates
/// whose entities have *exactly* the same label, used as a priori knowledge
/// for attribute/relationship matching (never added to final results
/// directly, as they may contain errors).
pub fn initial_matches(kb1: &Kb, kb2: &Kb, candidates: &Candidates) -> Vec<PairId> {
    candidates
        .iter()
        .filter(|&(_, (u1, u2))| kb1.label(u1) == kb2.label(u2))
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use remp_kb::KbBuilder;

    fn kb(name: &str, labels: &[&str]) -> Kb {
        let mut b = KbBuilder::new(name);
        for l in labels {
            b.add_entity(*l);
        }
        b.finish()
    }

    #[test]
    fn generates_pairs_over_threshold() {
        let kb1 = kb("a", &["The Player", "Cradle Will Rock", "Unrelated Thing"]);
        let kb2 = kb("b", &["Player", "Cradle Will Rock", "Something Else"]);
        let c = generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        assert!(c.id_of((EntityId(0), EntityId(0))).is_some(), "player pair kept");
        assert!(c.id_of((EntityId(1), EntityId(1))).is_some(), "cradle pair kept");
        assert!(c.id_of((EntityId(2), EntityId(2))).is_none(), "dissimilar pair dropped");
    }

    #[test]
    fn prior_equals_label_jaccard() {
        let kb1 = kb("a", &["alpha beta"]);
        let kb2 = kb("b", &["alpha gamma"]);
        let c = generate_candidates(&kb1, &kb2, 0.1, &Parallelism::Sequential);
        let id = c.id_of((EntityId(0), EntityId(0))).unwrap();
        assert!((c.prior(id) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_duplicate_pairs_from_shared_tokens() {
        // "alpha beta" shares two tokens with "alpha beta": the pair must
        // appear exactly once.
        let kb1 = kb("a", &["alpha beta"]);
        let kb2 = kb("b", &["alpha beta"]);
        let c = generate_candidates(&kb1, &kb2, 0.1, &Parallelism::Sequential);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn initial_matches_require_exact_labels() {
        let kb1 = kb("a", &["Exact Same", "Close Match"]);
        let kb2 = kb("b", &["Exact Same", "Close  Match"]);
        let c = generate_candidates(&kb1, &kb2, 0.3, &Parallelism::Sequential);
        let init = initial_matches(&kb1, &kb2, &c);
        assert_eq!(init.len(), 1);
        assert_eq!(c.pair(init[0]), (EntityId(0), EntityId(0)));
    }

    #[test]
    fn blocks_index_both_sides() {
        let kb1 = kb("a", &["x y", "x z"]);
        let kb2 = kb("b", &["x y"]);
        let c = generate_candidates(&kb1, &kb2, 0.1, &Parallelism::Sequential);
        assert_eq!(c.with_left(EntityId(0)).len(), 1);
        assert_eq!(c.with_right(EntityId(0)).len(), 2);
    }

    #[test]
    fn csr_slices_match_insertion_order() {
        // Pairs inserted out of entity order: per-entity CSR rows must
        // still list pair ids in ascending insertion order, and ids past
        // the densest slot must come back empty, not panic.
        let e = EntityId;
        let c = Candidates::from_pairs([
            ((e(5), e(0)), 0.5),
            ((e(1), e(3)), 0.4),
            ((e(5), e(2)), 0.3),
            ((e(1), e(0)), 0.2),
        ]);
        let ids: Vec<PairId> = c.ids().collect();
        assert_eq!(c.with_left(e(5)), &[ids[0], ids[2]]);
        assert_eq!(c.with_left(e(1)), &[ids[1], ids[3]]);
        assert_eq!(c.with_right(e(0)), &[ids[0], ids[3]]);
        assert_eq!(c.with_left(e(0)), &[] as &[PairId]);
        assert_eq!(c.with_left(e(700)), &[] as &[PairId]);
        assert_eq!(c.with_right(e(700)), &[] as &[PairId]);
        assert_eq!(c.left_slots(), 6);
        assert_eq!(c.right_slots(), 4);
    }

    #[test]
    fn restrict_preserves_priors() {
        let kb1 = kb("a", &["a b", "a c"]);
        let kb2 = kb("b", &["a b", "a c"]);
        let c = generate_candidates(&kb1, &kb2, 0.1, &Parallelism::Sequential);
        let keep: Vec<_> = c.ids().take(2).collect();
        let (r, map) = c.restrict(&keep);
        assert_eq!(r.len(), 2);
        for &old in &keep {
            let new = map[&old];
            assert_eq!(r.pair(new), c.pair(old));
            assert_eq!(r.prior(new), c.prior(old));
        }
    }

    #[test]
    fn restrict_rebuilds_csr() {
        let e = EntityId;
        let c =
            Candidates::from_pairs([((e(0), e(0)), 0.9), ((e(0), e(1)), 0.8), ((e(1), e(1)), 0.7)]);
        let drop_middle: Vec<PairId> = c.ids().filter(|&p| c.pair(p) != (e(0), e(1))).collect();
        let (r, _) = c.restrict(&drop_middle);
        assert_eq!(r.len(), 2);
        assert_eq!(r.with_left(e(0)).len(), 1);
        assert_eq!(r.with_right(e(1)).len(), 1);
        assert_eq!(r.id_of((e(0), e(1))), None);
    }

    #[test]
    fn set_prior_clamps() {
        let kb1 = kb("a", &["a"]);
        let kb2 = kb("b", &["a"]);
        let mut c = generate_candidates(&kb1, &kb2, 0.1, &Parallelism::Sequential);
        let id = c.ids().next().unwrap();
        c.set_prior(id, 1.5);
        assert_eq!(c.prior(id), 1.0);
    }
}
