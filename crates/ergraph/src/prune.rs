//! Partial-order based pruning — Algorithm 1 and Eq. 2 of the paper.
//!
//! For an entity `u`, all candidate pairs containing `u` form a *block*.
//! Within a block, `min_rank` of a pair is the number of pairs whose
//! similarity vector strictly dominates it — the minimal rank the pair can
//! have in any linearisation of the partial order. Pairs with
//! `min_rank ≥ k` cannot be in the top-k counterparts of `u` and are
//! pruned. The two [`prune_one_way`] passes (by KB1 entity, then by KB2
//! entity over the survivors) implement Algorithm 1's sequential structure.

use remp_par::Parallelism;
use remp_simil::SimVec;

use crate::{Candidates, PairId};

/// Which KB's entities define the blocks of a pruning pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Block by the KB1 (left) entity — `min_rank_1`.
    Left,
    /// Block by the KB2 (right) entity — `min_rank_2`.
    Right,
}

/// `min_rank_i(u1, u2)` (Eq. 2): the number of candidate pairs sharing the
/// `side` entity whose vector strictly dominates `s(u1, u2)`, computed
/// within `members` (the block).
fn rank_in_block(block: &[PairId], vectors: &[SimVec], target: PairId) -> usize {
    let t = &vectors[target.index()];
    block
        .iter()
        .filter(|&&other| other != target && vectors[other.index()].strictly_dominates(t))
        .count()
}

/// `min_rank(u1, u2) = max(min_rank_1, min_rank_2)` (Eq. 2), evaluated over
/// the full candidate set.
pub fn min_rank(candidates: &Candidates, vectors: &[SimVec], pair: PairId) -> usize {
    let (u1, u2) = candidates.pair(pair);
    let r1 = rank_in_block(candidates.with_left(u1), vectors, pair);
    let r2 = rank_in_block(candidates.with_right(u2), vectors, pair);
    r1.max(r2)
}

/// One pass of Algorithm 1 (`PruningInOneWay`): blocks the `survivors` by
/// the `side` entity and keeps pairs with fewer than `k` strict dominators
/// in their block.
///
/// Keeping `min_rank < k` directly is equivalent to the paper's cascade
/// (pruning a pair and then everything its vector weakly dominates):
/// if `s(q) ⪰ s(p)` and `q` has ≥ k strict dominators, those dominators
/// also strictly dominate `p`, so `p`'s rank is ≥ k as well.
pub fn prune_one_way(
    candidates: &Candidates,
    vectors: &[SimVec],
    survivors: &[PairId],
    side: Side,
    k: usize,
    par: &Parallelism,
) -> Vec<PairId> {
    // Blocks as a counting-sort CSR keyed by the dense side-entity id:
    // one count pass, a prefix sum, one fill pass in survivor order —
    // every block lists its pairs in the same order the old
    // `HashMap<EntityId, Vec<PairId>>` did, from two flat arrays.
    let slots = match side {
        Side::Left => candidates.left_slots(),
        Side::Right => candidates.right_slots(),
    };
    let slot_of = |pid: PairId| {
        let (u1, u2) = candidates.pair(pid);
        match side {
            Side::Left => u1.index(),
            Side::Right => u2.index(),
        }
    };
    let mut offsets = vec![0u32; slots + 1];
    for &pid in survivors {
        offsets[slot_of(pid) + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor: Vec<u32> = offsets[..slots].to_vec();
    let mut adj = vec![PairId(0); survivors.len()];
    for &pid in survivors {
        let slot = slot_of(pid);
        adj[cursor[slot] as usize] = pid;
        cursor[slot] += 1;
    }

    // A pair's dominator count depends only on the multiset of vectors in
    // its block, and pairs with bit-identical vectors get identical
    // counts. Real blocks are tie-heavy (a few thousand distinct vectors
    // across >100k block members on the benchmark presets), so each
    // over-sized block is grouped into *unique* vectors with
    // multiplicities and dominance runs unique × unique with an early
    // exit at `k` (the keep test `count < k` needs no exact count; a
    // vector never strictly dominates its own group). This is exact —
    // the same `f64` comparisons, just not repeated per duplicate.
    let slot_ids: Vec<usize> = (0..slots).collect();
    let per_slot: Vec<Vec<(PairId, bool)>> = par.par_map(&slot_ids, |&slot| {
        let block = &adj[offsets[slot] as usize..offsets[slot + 1] as usize];
        // |B| ≤ k: no need to prune (Alg. 1 line 9); the scatter below
        // defaults to keep.
        if block.len() <= k {
            return Vec::new();
        }
        let bits = |p: PairId| vectors[p.index()].components().iter().map(|c| c.to_bits());
        let mut members = block.to_vec();
        members.sort_unstable_by(|&a, &b| bits(a).cmp(bits(b)));
        // Adjacent identical vectors collapse into (representative,
        // multiplicity) groups; `group_of` remembers each member's group.
        let mut groups: Vec<(PairId, usize)> = Vec::new();
        let mut group_of: Vec<u32> = Vec::with_capacity(members.len());
        for &p in &members {
            match groups.last_mut() {
                Some((rep, mult)) if bits(*rep).eq(bits(p)) => *mult += 1,
                _ => groups.push((p, 1)),
            }
            group_of.push(groups.len() as u32 - 1);
        }
        let kept: Vec<bool> = groups
            .iter()
            .map(|&(rep, _)| {
                let target = &vectors[rep.index()];
                let mut dominators = 0;
                for &(other, mult) in &groups {
                    if vectors[other.index()].strictly_dominates(target) {
                        dominators += mult;
                        if dominators >= k {
                            break;
                        }
                    }
                }
                dominators < k
            })
            .collect();
        members.iter().zip(&group_of).map(|(&p, &g)| (p, kept[g as usize])).collect()
    });

    // Scatter the per-block decisions to pair ids, then filter in
    // survivor order — the result is identical for every `par` mode.
    let mut keep = vec![true; vectors.len()];
    for row in &per_slot {
        for &(pid, kept) in row {
            keep[pid.index()] = kept;
        }
    }
    survivors.iter().copied().filter(|pid| keep[pid.index()]).collect()
}

/// Algorithm 1: partial-order based pruning. Returns the retained entity
/// match set `M_rd` (pair ids into `candidates`), pruning first by KB1
/// entities and then by KB2 entities over the survivors.
pub fn prune(
    candidates: &Candidates,
    vectors: &[SimVec],
    k: usize,
    par: &Parallelism,
) -> Vec<PairId> {
    assert_eq!(candidates.len(), vectors.len(), "one vector per candidate required");
    let all: Vec<PairId> = candidates.ids().collect();
    let pass1 = prune_one_way(candidates, vectors, &all, Side::Left, k, par);
    prune_one_way(candidates, vectors, &pass1, Side::Right, k, par)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use remp_kb::EntityId;

    /// Most unit tests run the sequential reference mode; the proptests
    /// below drive a real worker pool to cover the parallel path too.
    const SEQ: &Parallelism = &Parallelism::Sequential;
    const POOL: &Parallelism = &Parallelism::Fixed(3);

    /// Builds a candidate set with `left[i]` paired to `right[i]`.
    fn cands(pairs: &[(u32, u32)]) -> Candidates {
        Candidates::from_pairs(pairs.iter().map(|&(l, r)| ((EntityId(l), EntityId(r)), 0.5)))
    }

    fn vecs(components: &[&[f64]]) -> Vec<SimVec> {
        components.iter().map(|c| SimVec::new(c.to_vec())).collect()
    }

    #[test]
    fn small_blocks_survive_untouched() {
        // One entity with two counterparts, k = 4 → keep both.
        let c = cands(&[(0, 0), (0, 1)]);
        let v = vecs(&[&[0.9], &[0.1]]);
        assert_eq!(prune(&c, &v, 4, SEQ).len(), 2);
    }

    #[test]
    fn dominated_pairs_beyond_k_are_pruned() {
        // Entity 0 on the left with 4 counterparts in a chain; k = 2 keeps
        // the top 2 of the dominance chain.
        let c = cands(&[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let v = vecs(&[&[0.9], &[0.7], &[0.5], &[0.3]]);
        let kept = prune(&c, &v, 2, SEQ);
        assert_eq!(kept, vec![PairId(0), PairId(1)]);
    }

    #[test]
    fn incomparable_vectors_are_all_kept() {
        // Four incomparable 2-d vectors: nobody dominates anybody → all stay
        // even with k = 1 (weak ordering keeps "nearly k" per entity).
        let c = cands(&[(0, 0), (0, 1), (0, 2), (0, 3)]);
        let v = vecs(&[&[0.9, 0.1], &[0.7, 0.3], &[0.5, 0.5], &[0.1, 0.9]]);
        assert_eq!(prune(&c, &v, 1, SEQ).len(), 4);
    }

    #[test]
    fn equal_vectors_do_not_prune_each_other() {
        let c = cands(&[(0, 0), (0, 1), (0, 2)]);
        let v = vecs(&[&[0.5], &[0.5], &[0.5]]);
        assert_eq!(prune(&c, &v, 1, SEQ).len(), 3);
    }

    #[test]
    fn second_pass_blocks_by_right_entity() {
        // Right entity 0 shared by 4 pairs with distinct left entities:
        // left pass keeps all (blocks of size 1), right pass prunes.
        let c = cands(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let v = vecs(&[&[0.9], &[0.7], &[0.5], &[0.3]]);
        let kept = prune(&c, &v, 2, SEQ);
        assert_eq!(kept, vec![PairId(0), PairId(1)]);
    }

    #[test]
    fn min_rank_matches_eq2() {
        let c = cands(&[(0, 0), (0, 1), (1, 1)]);
        let v = vecs(&[&[0.9], &[0.2], &[0.6]]);
        // (0,1): dominated by (0,0) in left block; by (1,1) in right block.
        assert_eq!(min_rank(&c, &v, PairId(1)), 1);
        assert_eq!(min_rank(&c, &v, PairId(0)), 0);
    }

    /// Reference implementation of one pruning pass straight from Eq. 2.
    fn reference_one_way(
        c: &Candidates,
        v: &[SimVec],
        survivors: &[PairId],
        side: Side,
        k: usize,
    ) -> Vec<PairId> {
        survivors
            .iter()
            .copied()
            .filter(|&p| {
                let (u1, u2) = c.pair(p);
                let block: Vec<PairId> = survivors
                    .iter()
                    .copied()
                    .filter(|&q| {
                        let (w1, w2) = c.pair(q);
                        match side {
                            Side::Left => w1 == u1,
                            Side::Right => w2 == u2,
                        }
                    })
                    .collect();
                if block.len() <= k {
                    return true;
                }
                block
                    .iter()
                    .filter(|&&q| q != p && v[q.index()].strictly_dominates(&v[p.index()]))
                    .count()
                    < k
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prune_matches_reference(
            entries in proptest::collection::vec(
                ((0u32..4, 0u32..4), proptest::collection::vec(0.0f64..1.0, 2)),
                1..24
            ),
            k in 1usize..4
        ) {
            let mut seen = std::collections::HashSet::new();
            let mut pairs = Vec::new();
            let mut vectors = Vec::new();
            for ((l, r), sv) in entries {
                if seen.insert((l, r)) {
                    pairs.push((l, r));
                    vectors.push(SimVec::new(sv));
                }
            }
            let c = cands(&pairs);
            let all: Vec<PairId> = c.ids().collect();
            let fast1 = prune_one_way(&c, &vectors, &all, Side::Left, k, POOL);
            let slow1 = reference_one_way(&c, &vectors, &all, Side::Left, k);
            prop_assert_eq!(fast1.clone(), slow1);
            let fast2 = prune_one_way(&c, &vectors, &fast1, Side::Right, k, POOL);
            let slow2 = reference_one_way(&c, &vectors, &fast1, Side::Right, k);
            prop_assert_eq!(fast2, slow2);
        }

        /// Pruning is sound: retained pairs always include every pair whose
        /// full-set min_rank is 0 (undominated pairs are never discarded).
        #[test]
        fn undominated_pairs_survive(
            entries in proptest::collection::vec(
                ((0u32..4, 0u32..4), proptest::collection::vec(0.0f64..1.0, 2)),
                1..24
            ),
            k in 1usize..4
        ) {
            let mut seen = std::collections::HashSet::new();
            let mut pairs = Vec::new();
            let mut vectors = Vec::new();
            for ((l, r), sv) in entries {
                if seen.insert((l, r)) {
                    pairs.push((l, r));
                    vectors.push(SimVec::new(sv));
                }
            }
            let c = cands(&pairs);
            let kept = prune(&c, &vectors, k, POOL);
            for p in c.ids() {
                if min_rank(&c, &vectors, p) == 0 {
                    prop_assert!(kept.contains(&p), "undominated pair {p} was pruned");
                }
            }
        }
    }
}
