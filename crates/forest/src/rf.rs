//! Bagged random forests over CART trees.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cart::bootstrap_indices;
use crate::{DecisionTree, TreeConfig};

/// Forest parameters mirroring scikit-learn's defaults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForestConfig {
    /// Number of trees (sklearn default 100).
    pub n_trees: usize,
    /// Per-tree growing parameters; `max_features = None` here means the
    /// forest picks `√d` automatically (sklearn's `max_features="sqrt"`).
    pub tree: TreeConfig,
    /// RNG seed for bootstraps and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { n_trees: 100, tree: TreeConfig::default(), seed: 0 }
    }
}

/// A bagged random-forest binary classifier.
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits the forest: each tree trains on a bootstrap resample with `√d`
    /// features per split (unless overridden in `config.tree`).
    ///
    /// # Panics
    /// Panics on empty input or ragged feature matrices.
    pub fn fit(samples: &[Vec<f64>], labels: &[bool], config: &ForestConfig) -> RandomForest {
        RandomForest::fit_par(samples, labels, config, &remp_par::Parallelism::Sequential)
    }

    /// [`RandomForest::fit`] on a worker pool: the master RNG draws every
    /// bootstrap and per-tree seed *sequentially* (preserving the exact
    /// random stream of the sequential fit), then the expensive tree fits
    /// run data-parallel — the resulting forest is bit-identical in every
    /// [`remp_par::Parallelism`] mode.
    ///
    /// # Panics
    /// Panics on empty input or ragged feature matrices.
    pub fn fit_par(
        samples: &[Vec<f64>],
        labels: &[bool],
        config: &ForestConfig,
        par: &remp_par::Parallelism,
    ) -> RandomForest {
        assert!(!samples.is_empty(), "cannot fit on empty data");
        assert_eq!(samples.len(), labels.len());
        let d = samples[0].len();
        let tree_config = TreeConfig {
            max_features: config
                .tree
                .max_features
                .or_else(|| Some(((d as f64).sqrt().round() as usize).max(1))),
            ..config.tree
        };

        let mut rng = StdRng::seed_from_u64(config.seed);
        let draws: Vec<(Vec<usize>, u64)> = (0..config.n_trees.max(1))
            .map(|_| {
                let idx = bootstrap_indices(samples.len(), &mut rng);
                (idx, rng.gen())
            })
            .collect();
        let trees = par.par_map(&draws, |(idx, tree_seed)| {
            let boot_x: Vec<Vec<f64>> = idx.iter().map(|&i| samples[i].clone()).collect();
            let boot_y: Vec<bool> = idx.iter().map(|&i| labels[i]).collect();
            let mut tree_rng = StdRng::seed_from_u64(*tree_seed);
            DecisionTree::fit(&boot_x, &boot_y, &tree_config, &mut tree_rng)
        });
        RandomForest { trees }
    }

    /// Mean positive-class probability across trees.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict_proba(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Majority-vote classification at probability 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) > 0.5
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small_config() -> ForestConfig {
        ForestConfig { n_trees: 25, ..ForestConfig::default() }
    }

    #[test]
    fn separable_data_classified_perfectly() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i * 7 % 13) as f64]).collect();
        let ys: Vec<bool> = (0..40).map(|i| i >= 20).collect();
        let rf = RandomForest::fit(&xs, &ys, &small_config());
        let acc = xs.iter().zip(&ys).filter(|(x, &y)| rf.predict(x) == y).count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn noisy_threshold_data_generalises() {
        // y = x0 > 0.5 with 10% label noise; test on clean held-out points.
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..300 {
            let x: f64 = rng.gen();
            let noise = rng.gen_bool(0.1);
            xs.push(vec![x, rng.gen()]);
            ys.push((x > 0.5) != noise);
        }
        let rf = RandomForest::fit(&xs, &ys, &small_config());
        let mut correct = 0;
        for i in 0..100 {
            let x = i as f64 / 100.0;
            if rf.predict(&[x, 0.5]) == (x > 0.5) {
                correct += 1;
            }
        }
        assert!(correct >= 90, "held-out accuracy {correct}/100");
    }

    #[test]
    fn deterministic_under_seed() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<bool> = (0..30).map(|i| i % 3 == 0).collect();
        let a = RandomForest::fit(&xs, &ys, &small_config());
        let b = RandomForest::fit(&xs, &ys, &small_config());
        for i in 0..30 {
            let x = [i as f64 + 0.5];
            assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
        }
    }

    #[test]
    fn num_trees_respected() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![false, true];
        let rf = RandomForest::fit(&xs, &ys, &ForestConfig { n_trees: 7, ..Default::default() });
        assert_eq!(rf.num_trees(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Probabilities stay in [0, 1] on arbitrary queries.
        #[test]
        fn probabilities_bounded(
            data in proptest::collection::vec((0.0f64..1.0, proptest::bool::ANY), 4..40),
            query in 0.0f64..1.0
        ) {
            let xs: Vec<Vec<f64>> = data.iter().map(|&(x, _)| vec![x]).collect();
            let ys: Vec<bool> = data.iter().map(|&(_, y)| y).collect();
            let rf = RandomForest::fit(&xs, &ys, &ForestConfig { n_trees: 5, ..Default::default() });
            let p = rf.predict_proba(&[query]);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        /// Constant labels are always reproduced.
        #[test]
        fn constant_labels_learned(
            xs in proptest::collection::vec(0.0f64..1.0, 3..20),
            label in proptest::bool::ANY,
            query in 0.0f64..1.0
        ) {
            let feats: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
            let ys = vec![label; feats.len()];
            let rf = RandomForest::fit(&feats, &ys, &ForestConfig { n_trees: 5, ..Default::default() });
            prop_assert_eq!(rf.predict(&[query]), label);
        }
    }
}
