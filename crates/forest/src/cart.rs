//! CART decision trees with Gini impurity.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Tree-growing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeConfig {
    /// Maximum depth; `None` grows to purity (sklearn default).
    pub max_depth: Option<usize>,
    /// Minimum samples required to split a node (sklearn default 2).
    pub min_samples_split: usize,
    /// Number of features examined per split; `None` uses all (a single
    /// CART tree), `Some(k)` subsamples `k` (forests use `√d`).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: None, min_samples_split: 2, max_features: None }
    }
}

#[derive(Clone, Debug)]
enum Node {
    /// Probability of the positive class among training samples reaching
    /// this leaf.
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A binary CART classifier over dense `f64` feature vectors.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// Fits a tree on `samples[i]` with boolean `labels[i]`.
    ///
    /// `rng` drives feature subsampling (unused when
    /// [`TreeConfig::max_features`] is `None`).
    ///
    /// # Panics
    /// Panics on empty input or ragged feature matrices.
    pub fn fit(
        samples: &[Vec<f64>],
        labels: &[bool],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> DecisionTree {
        assert!(!samples.is_empty(), "cannot fit on empty data");
        assert_eq!(samples.len(), labels.len(), "one label per sample");
        let n_features = samples[0].len();
        assert!(samples.iter().all(|s| s.len() == n_features), "ragged features");

        let mut tree = DecisionTree { nodes: Vec::new(), n_features };
        let indices: Vec<usize> = (0..samples.len()).collect();
        tree.grow(samples, labels, &indices, 0, config, rng);
        tree
    }

    /// Recursively grows the subtree for `indices`, returning its node id.
    fn grow(
        &mut self,
        samples: &[Vec<f64>],
        labels: &[bool],
        indices: &[usize],
        depth: usize,
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> usize {
        let positives = indices.iter().filter(|&&i| labels[i]).count();
        let p = positives as f64 / indices.len() as f64;
        let pure = positives == 0 || positives == indices.len();
        let depth_capped = config.max_depth.is_some_and(|d| depth >= d);
        if pure || depth_capped || indices.len() < config.min_samples_split {
            self.nodes.push(Node::Leaf(p));
            return self.nodes.len() - 1;
        }

        match self.best_split(samples, labels, indices, config, rng) {
            None => {
                self.nodes.push(Node::Leaf(p));
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| samples[i][feature] <= threshold);
                debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
                // Reserve this node's slot before growing children.
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf(p)); // placeholder
                let left = self.grow(samples, labels, &left_idx, depth + 1, config, rng);
                let right = self.grow(samples, labels, &right_idx, depth + 1, config, rng);
                self.nodes[id] = Node::Split { feature, threshold, left, right };
                id
            }
        }
    }

    /// Finds the Gini-optimal `(feature, threshold)` split, or `None` if no
    /// split separates the samples.
    fn best_split(
        &self,
        samples: &[Vec<f64>],
        labels: &[bool],
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let mut features: Vec<usize> = (0..self.n_features).collect();
        if let Some(k) = config.max_features {
            features.shuffle(rng);
            features.truncate(k.max(1));
        }

        let total_pos = indices.iter().filter(|&&i| labels[i]).count() as f64;
        let n = indices.len() as f64;
        let mut best: Option<(f64, usize, f64)> = None; // (score, feature, threshold)

        let mut column: Vec<(f64, bool)> = Vec::with_capacity(indices.len());
        for &f in &features {
            column.clear();
            column.extend(indices.iter().map(|&i| (samples[i][f], labels[i])));
            column.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

            // Scan split points between distinct consecutive values.
            let mut left_n = 0.0f64;
            let mut left_pos = 0.0f64;
            for w in 0..column.len() - 1 {
                left_n += 1.0;
                if column[w].1 {
                    left_pos += 1.0;
                }
                if column[w].0 == column[w + 1].0 {
                    continue; // same value: not a valid threshold
                }
                let right_n = n - left_n;
                let right_pos = total_pos - left_pos;
                let gini = |cnt: f64, pos: f64| {
                    if cnt == 0.0 {
                        0.0
                    } else {
                        let p = pos / cnt;
                        2.0 * p * (1.0 - p)
                    }
                };
                let score = (left_n / n) * gini(left_n, left_pos)
                    + (right_n / n) * gini(right_n, right_pos);
                let threshold = 0.5 * (column[w].0 + column[w + 1].0);
                if best.is_none_or(|(b, _, _)| score < b - 1e-15) {
                    best = Some((score, f, threshold));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    /// Probability of the positive class for `x`.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features, "feature dimension mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf(p) => return *p,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Hard classification at probability 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) > 0.5
    }

    /// Number of nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Draws a bootstrap sample of `n` indices (with replacement).
pub(crate) fn bootstrap_indices(n: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn separable_data_fits_perfectly() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default(), &mut rng());
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), y);
        }
    }

    #[test]
    fn xor_needs_depth_two() {
        let xs = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let ys = vec![false, true, true, false];
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default(), &mut rng());
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(tree.predict(x), y, "xor point {x:?}");
        }
    }

    #[test]
    fn constant_labels_yield_single_leaf() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![true, true, true];
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.num_nodes(), 1);
        assert!(tree.predict(&[9.0]));
    }

    #[test]
    fn identical_features_cannot_split() {
        let xs = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        let ys = vec![true, false, true, false];
        let tree = DecisionTree::fit(&xs, &ys, &TreeConfig::default(), &mut rng());
        assert_eq!(tree.num_nodes(), 1, "no valid threshold exists");
        assert!((tree.predict_proba(&[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_depth_caps_growth() {
        let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let ys: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        let capped = TreeConfig { max_depth: Some(2), ..TreeConfig::default() };
        let tree = DecisionTree::fit(&xs, &ys, &capped, &mut rng());
        // Depth-2 binary tree has at most 7 nodes.
        assert!(tree.num_nodes() <= 7, "got {} nodes", tree.num_nodes());
    }

    #[test]
    fn probabilities_reflect_leaf_composition() {
        let xs = vec![vec![0.0], vec![0.0], vec![0.0], vec![10.0]];
        let ys = vec![true, true, false, false];
        let capped = TreeConfig { max_depth: Some(1), ..TreeConfig::default() };
        let tree = DecisionTree::fit(&xs, &ys, &capped, &mut rng());
        let p = tree.predict_proba(&[0.0]);
        assert!((p - 2.0 / 3.0).abs() < 1e-9, "leaf holds 2/3 positives, got {p}");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        let _ = DecisionTree::fit(&[], &[], &TreeConfig::default(), &mut rng());
    }

    #[test]
    fn bootstrap_is_with_replacement() {
        let mut r = rng();
        let idx = bootstrap_indices(50, &mut r);
        assert_eq!(idx.len(), 50);
        assert!(idx.iter().all(|&i| i < 50));
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() < 50, "a 50-sample bootstrap almost surely repeats");
    }
}
