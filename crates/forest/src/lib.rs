//! Random-forest substrate (paper §VII-B).
//!
//! The paper trains a scikit-learn `RandomForestClassifier` with default
//! parameters to resolve isolated entity pairs (and the Corleone baseline
//! is built on random forests too). This crate is a from-scratch
//! implementation of the same default configuration: CART trees with Gini
//! impurity grown to purity, bootstrap bagging, and `√d` feature
//! subsampling per split.

mod cart;
mod rf;

pub use cart::{DecisionTree, TreeConfig};
pub use rf::{ForestConfig, RandomForest};
