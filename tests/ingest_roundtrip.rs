//! Property tests for the ingestion formats: every serialization is a
//! lossless round trip, and the end-to-end file-backed campaign is
//! indistinguishable from the in-memory one.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;

use remp::core::{run_on_dataset, RempConfig};
use remp::crowd::SimulatedCrowd;
use remp::datasets::{generate, tiny, GeneratedDataset};
use remp::ingest::csv::{export_csv_kb, load_csv_kb};
use remp::ingest::ntriples::{read_ntriples, write_ntriples};
use remp::ingest::snapshot::decode_snapshot;
use remp::ingest::{export_dataset, load_kb, write_snapshot, ExportFormat, FileDataset};
use remp::kb::{Kb, KbBuilder, Value};

/// Characters that exercise every escaping path: quoting, separators,
/// backslashes, newlines/tabs, IRI delimiters, multi-byte UTF-8.
/// (`\r` is deliberately absent: CSV normalizes CRLF inside quoted
/// fields to `\n`, as FORMAT.md documents.)
const TRICKY_CHARS: &[char] = &[
    ' ', 'a', 'b', 'Z', '0', '"', '\\', '\n', '\t', ',', '.', '<', '>', '%', '#', '/', ':', 'é',
    '😀',
];

fn text_strategy() -> impl Strategy<Value = String> {
    vec(0usize..TRICKY_CHARS.len(), 0..9)
        .prop_map(|ix| ix.into_iter().map(|i| TRICKY_CHARS[i]).collect())
}

fn number_strategy() -> impl Strategy<Value = f64> {
    (0usize..6, -1.0e3f64..1.0e3).prop_map(|(pick, x)| match pick {
        0 => 0.0,
        1 => -0.0,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => 1.0e300,
        _ => x,
    })
}

fn value_strategy() -> impl Strategy<Value = Value> {
    (0usize..2, text_strategy(), number_strategy()).prop_map(|(kind, s, n)| {
        if kind == 0 {
            Value::text(s)
        } else {
            Value::number(n)
        }
    })
}

/// A random KB with adversarial labels/names, arbitrary triples and
/// (via interning of colliding random names) possibly-shared schema ids.
fn kb_strategy() -> impl Strategy<Value = Kb> {
    (1usize..10).prop_flat_map(|n| {
        (
            Just(n),
            vec(text_strategy(), n),
            vec(text_strategy(), 1..5),
            vec(text_strategy(), 1..4),
            vec((0usize..n, 0usize..8, value_strategy()), 0..40),
            vec((0usize..n, 0usize..8, 0usize..n), 0..40),
        )
            .prop_map(|(n, labels, attr_names, rel_names, attr_triples, rel_triples)| {
                let mut b = KbBuilder::new("prop");
                let entities: Vec<_> = labels.into_iter().map(|l| b.add_entity(l)).collect();
                // Schema names are interned lazily, on first use by a
                // triple: text formats carry schema only through use, so
                // a never-used attribute name cannot round-trip (the
                // binary snapshot does preserve it — see the dedicated
                // test below).
                for (u, a, v) in attr_triples {
                    let attr = b.add_attr(&attr_names[a % attr_names.len()]);
                    b.add_attr_triple(entities[u], attr, v);
                }
                for (s, r, o) in rel_triples {
                    let rel = b.add_rel(&rel_names[r % rel_names.len()]);
                    b.add_rel_triple(entities[s], rel, entities[o]);
                }
                let _ = n;
                b.finish()
            })
    })
}

/// A fresh scratch directory per property case.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "remp-roundtrip-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ntriples_round_trip_is_identity(kb in kb_strategy()) {
        let mut buf = Vec::new();
        write_ntriples(&kb, &mut buf).unwrap();
        let reloaded = read_ntriples(buf.as_slice(), Path::new("prop.nt"), "prop").unwrap();
        prop_assert_eq!(reloaded.kb, kb);
    }

    #[test]
    fn csv_round_trip_is_identity(kb in kb_strategy()) {
        let dir = scratch("csv");
        export_csv_kb(&kb, &dir).unwrap();
        let reloaded = load_csv_kb(&dir, "prop").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert_eq!(reloaded.kb, kb);
    }

    #[test]
    fn snapshot_round_trip_is_identity(kb in kb_strategy()) {
        let dir = scratch("rkb");
        let path = dir.join("kb.rkb");
        let external_ids: Vec<String> =
            (0..kb.num_entities()).map(|i| format!("urn:prop:{i}")).collect();
        write_snapshot(&kb, &external_ids, &path).unwrap();
        let reloaded = load_kb(&path, "ignored").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        prop_assert_eq!(&reloaded.kb, &kb);
        prop_assert_eq!(reloaded.external_ids, external_ids);
    }

    #[test]
    fn random_bytes_never_panic_the_snapshot_reader(
        mut bytes in vec(any::<u8>(), 0..256),
        with_header in proptest::bool::ANY,
    ) {
        if with_header && bytes.len() >= 8 {
            // Valid magic + version so the section parser gets exercised.
            bytes[..4].copy_from_slice(b"RKB\0");
            bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        }
        // Must return (usually Err) — never panic or hang.
        let _ = decode_snapshot(&bytes, Path::new("fuzz.rkb"));
    }
}

/// Unlike the triple-based text formats, the binary snapshot preserves
/// schema elements that no triple uses.
#[test]
fn snapshot_preserves_unused_schema_elements() {
    let mut b = KbBuilder::new("schema");
    b.add_entity("only");
    b.add_attr("declared but unused");
    b.add_rel("also unused");
    let kb = b.finish();
    let dir = scratch("unused-schema");
    let path = dir.join("kb.rkb");
    write_snapshot(&kb, &["e0".to_owned()], &path).unwrap();
    let reloaded = load_kb(&path, "ignored").unwrap();
    assert_eq!(reloaded.kb, kb);
    assert_eq!(reloaded.kb.num_attrs(), 1);
    assert_eq!(reloaded.kb.num_rels(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The acceptance check of the ingestion subsystem: an exported →
/// imported → snapshotted dataset drives a campaign to the *exact* same
/// outcome as the in-memory preset it came from.
#[test]
fn file_backed_campaign_matches_in_memory_run() {
    let dataset = generate(&tiny(1.0));
    let dir = scratch("e2e");
    let paths = export_dataset(&dataset, &dir, ExportFormat::NTriples).unwrap();

    // Text → snapshot (the `rempctl import` step).
    let snap1 = dir.join("kb1.rkb");
    let snap2 = dir.join("kb2.rkb");
    let loaded1 = load_kb(&paths.kb1, "tiny-kb1").unwrap();
    let loaded2 = load_kb(&paths.kb2, "tiny-kb2").unwrap();
    write_snapshot(&loaded1.kb, &loaded1.external_ids, &snap1).unwrap();
    write_snapshot(&loaded2.kb, &loaded2.external_ids, &snap2).unwrap();

    // Snapshot-backed dataset is bit-identical to the generated one.
    let file_dataset = FileDataset::load("tiny", &snap1, &snap2, &paths.gold).unwrap();
    assert_eq!(file_dataset.kb1, dataset.kb1);
    assert_eq!(file_dataset.kb2, dataset.kb2);
    assert_eq!(file_dataset.gold, dataset.gold);
    let file_dataset = file_dataset.into_generated();

    // Same config + same crowd seed ⇒ identical campaign outcome.
    let campaign = |d: &GeneratedDataset| {
        let mut crowd = SimulatedCrowd::paper_default(7);
        run_on_dataset(d, &RempConfig::default(), &mut crowd)
    };
    let in_memory = campaign(&dataset);
    let file_backed = campaign(&file_dataset);
    assert_eq!(file_backed.eval, in_memory.eval);
    assert_eq!(file_backed.questions, in_memory.questions);
    assert_eq!(file_backed.loops, in_memory.loops);
    assert!(in_memory.eval.f1 > 0.5, "tiny campaign should mostly resolve: {:?}", in_memory.eval);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// CSV export drives the same campaign equally well.
#[test]
fn csv_backed_dataset_is_equivalent_too() {
    let dataset = generate(&tiny(1.0));
    let dir = scratch("e2e-csv");
    let paths = export_dataset(&dataset, &dir, ExportFormat::Csv).unwrap();
    let file_dataset = FileDataset::load("tiny", &paths.kb1, &paths.kb2, &paths.gold).unwrap();
    assert_eq!(file_dataset.kb1, dataset.kb1);
    assert_eq!(file_dataset.kb2, dataset.kb2);
    assert_eq!(file_dataset.gold, dataset.gold);
    std::fs::remove_dir_all(&dir).unwrap();
}
