//! Checkpoint/resume of long crowd campaigns: a session serialized
//! mid-campaign, round-tripped through its JSON checkpoint and resumed
//! must finish with exactly the outcome of an uninterrupted run.

use remp::core::{Remp, RempConfig, RempError, RempSession, SessionCheckpoint};
use remp::crowd::{LabelSource, OracleCrowd, SimulatedCrowd};
use remp::datasets::{dblp_acm, generate, iimb, GeneratedDataset};

fn answer_batch(
    session: &mut RempSession<'_>,
    d: &GeneratedDataset,
    crowd: &mut dyn LabelSource,
    batch: &remp::core::Batch,
) {
    for q in &batch.questions {
        let labels = crowd.label(d.is_match(q.pair.0, q.pair.1));
        session.submit(q.id, labels).unwrap();
    }
}

fn drain(session: &mut RempSession<'_>, d: &GeneratedDataset, crowd: &mut dyn LabelSource) {
    while let Some(batch) = session.next_batch().unwrap() {
        answer_batch(session, d, crowd, &batch);
    }
}

/// Interrupts after `batches_before` complete batches, round-trips the
/// session through JSON, and finishes; the outcome must match an
/// uninterrupted `Remp::run` with the same crowd seed.
fn interrupted_run_matches(d: &GeneratedDataset, config: RempConfig, batches_before: usize) {
    let remp = Remp::new(config);
    let crowd_seed = 99;

    // Uninterrupted reference.
    let mut crowd = SimulatedCrowd::paper_default(crowd_seed);
    let reference = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);

    // Interrupted: same crowd stream, session checkpointed in between.
    let mut crowd = SimulatedCrowd::paper_default(crowd_seed);
    let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
    for _ in 0..batches_before {
        match session.next_batch().unwrap() {
            Some(batch) => answer_batch(&mut session, d, &mut crowd, &batch),
            None => break,
        }
    }
    let text = session.checkpoint().to_json_string();
    drop(session);

    let checkpoint = SessionCheckpoint::from_json_str(&text).unwrap();
    let mut resumed = RempSession::resume(&d.kb1, &d.kb2, checkpoint).unwrap();
    drain(&mut resumed, d, &mut crowd);
    let outcome = resumed.finish();

    assert_eq!(outcome, reference, "resumed campaign must match the uninterrupted one");
    assert!(outcome.questions_asked > 0);
}

#[test]
fn resume_after_two_batches_matches_iimb() {
    let d = generate(&iimb(0.4));
    interrupted_run_matches(&d, RempConfig::default(), 2);
}

#[test]
fn resume_after_one_batch_matches_dblp_acm() {
    let d = generate(&dblp_acm(0.3));
    interrupted_run_matches(&d, RempConfig::default(), 1);
}

#[test]
fn resume_mid_batch_preserves_open_questions() {
    let d = generate(&iimb(0.3));
    let remp = Remp::default();

    // Reference: uninterrupted oracle-driven session.
    let mut crowd = OracleCrowd::new();
    let reference = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);

    // Interrupted *inside* a batch: half the answers land, then the
    // campaign stops and resumes from JSON.
    let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
    let batch = session.next_batch().unwrap().expect("IIMB asks questions");
    let half = batch.questions.len() / 2;
    for q in &batch.questions[..half] {
        session
            .submit(q.id, vec![remp::crowd::Label::new(0.999, d.is_match(q.pair.0, q.pair.1))])
            .unwrap();
    }
    assert_eq!(session.open_questions().len(), batch.questions.len() - half);
    let text = session.checkpoint().to_json_string();
    drop(session);

    let mut resumed =
        RempSession::resume(&d.kb1, &d.kb2, SessionCheckpoint::from_json_str(&text).unwrap())
            .unwrap();
    // The open questions survive the round trip.
    assert_eq!(resumed.open_questions().len(), batch.questions.len() - half);
    // Answer the rest of the interrupted batch, then drain normally.
    for q in &batch.questions[half..] {
        resumed
            .submit(q.id, vec![remp::crowd::Label::new(0.999, d.is_match(q.pair.0, q.pair.1))])
            .unwrap();
    }
    let mut crowd = OracleCrowd::new();
    drain(&mut resumed, &d, &mut crowd);
    assert_eq!(resumed.finish(), reference);
}

#[test]
fn checkpoint_counters_survive_the_round_trip() {
    let d = generate(&iimb(0.3));
    let remp = Remp::new(RempConfig::default().with_mu(4));
    let mut crowd = OracleCrowd::new();
    let mut session = remp.begin(&d.kb1, &d.kb2).unwrap();
    for _ in 0..2 {
        if let Some(batch) = session.next_batch().unwrap() {
            answer_batch(&mut session, &d, &mut crowd, &batch);
        }
    }
    let questions = session.questions_asked();
    let loops = session.loops();
    let text = session.checkpoint().to_json_string();

    let resumed =
        RempSession::resume(&d.kb1, &d.kb2, SessionCheckpoint::from_json_str(&text).unwrap())
            .unwrap();
    assert_eq!(resumed.questions_asked(), questions);
    assert_eq!(resumed.loops(), loops);
    assert_eq!(resumed.config().mu, 4);
}

#[test]
fn resume_rejects_mismatched_config_shape() {
    let d = generate(&iimb(0.2));
    let remp = Remp::default();
    let session = remp.begin(&d.kb1, &d.kb2).unwrap();
    let mut checkpoint = session.checkpoint();
    // Tampering with stage-1 knobs changes the retained set: resume must
    // notice the resolutions no longer line up rather than misapply them.
    checkpoint.config.knn_k = 1;
    match RempSession::resume(&d.kb1, &d.kb2, checkpoint) {
        Err(RempError::CheckpointMismatch(_)) => {}
        // If k = 1 pruning happens to retain the very same pair count the
        // resume is legitimately accepted — the state still lines up.
        Ok(_) => {}
        Err(other) => panic!("unexpected error {other:?}"),
    }
}
