//! End-to-end tests of the `rempd` campaign server: an HTTP campaign
//! must be **bit-identical** to the same campaign run through
//! `RempSession` in process — including across a mid-campaign server
//! restart — and the server must answer malformed traffic with typed
//! errors, never a panic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use remp::core::RempConfig;
use remp::datasets::{generate, tiny};
use remp::ingest::FileDataset;
use remp::kb::EntityId;
use remp::serve::{
    drive, drive_n, outcome_matches, reference_outcome, CrowdParams, CrowdPolicy, ManualClock,
    ServeClient, Server, ServerConfig, WireCrowd,
};
use remp_json::Json;

/// A test server: bound on a free port, stopped and joined on drop.
struct TestServer {
    client: ServeClient,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl TestServer {
    fn start(state_dir: Option<PathBuf>) -> TestServer {
        TestServer::start_config(ServerConfig { state_dir, ..ServerConfig::default() })
    }

    /// A server whose lease clock is the given [`ManualClock`] — tests
    /// advance time by hand instead of sleeping.
    fn start_on_clock(clock: Arc<ManualClock>) -> TestServer {
        TestServer::start_config(ServerConfig { clock, ..ServerConfig::default() })
    }

    fn start_config(mut config: ServerConfig) -> TestServer {
        config.addr = "127.0.0.1:0".into();
        let server = Server::bind(&config).expect("bind test server");
        let addr = server.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            server.run(&stop_flag).expect("server run");
        });
        TestServer { client: ServeClient::new(addr.to_string()), stop, join: Some(join) }
    }

    /// Graceful stop: drains handlers, checkpoints campaigns, joins.
    fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            join.join().expect("server thread");
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remp-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/tiny")
        .join(name)
        .display()
        .to_string()
}

fn create_preset_campaign(client: &ServeClient, per_question: usize, name: &str) -> String {
    let created = client
        .post(
            "/campaigns",
            &Json::Obj(vec![
                ("name".into(), Json::from(name)),
                ("preset".into(), Json::from("TINY")),
                ("per_question".into(), Json::from(per_question)),
            ]),
        )
        .expect("create campaign");
    created.get("id").and_then(Json::as_str).expect("campaign id").to_owned()
}

#[test]
fn http_campaign_from_files_is_bit_identical_to_in_process() {
    // The campaign runs on the committed fixture files: the server loads
    // them through POST /campaigns, the client loads the same files for
    // the gold standard — exactly the `rempctl drive` deployment shape.
    let dataset = FileDataset::load(
        "tiny",
        Path::new(&fixture("kb1.nt")),
        Path::new(&fixture("kb2.nt")),
        Path::new(&fixture("gold.tsv")),
    )
    .expect("fixture dataset");
    let params = CrowdParams { per_question: 3, ..CrowdParams::paper_default(11) };

    let server = TestServer::start(None);
    let created = server
        .client
        .post(
            "/campaigns",
            &Json::Obj(vec![
                ("name".into(), Json::from("files")),
                ("kb1".into(), Json::from(fixture("kb1.nt"))),
                ("kb2".into(), Json::from(fixture("kb2.nt"))),
                ("per_question".into(), Json::from(3usize)),
            ]),
        )
        .expect("create campaign");
    let id = created.get("id").and_then(Json::as_str).unwrap().to_owned();

    let mut crowd = WireCrowd::new(&params);
    let truth = |a: EntityId, b: EntityId| dataset.is_match(a, b);
    let driven = drive(&server.client, &id, &mut crowd, &truth).expect("drive to completion");
    assert!(!driven.is_empty());
    let wire_outcome = server.client.get(&format!("/campaigns/{id}/outcome")).unwrap();
    server.shutdown();

    // The in-process ground truth: same KBs, same config, same seeded
    // crowd stream, same online quality estimation — no server.
    let policy = CrowdPolicy { per_question: 3, ..CrowdPolicy::default() };
    let (reference, log) = reference_outcome(
        &dataset.kb1,
        &dataset.kb2,
        &RempConfig::default(),
        &policy,
        &params,
        &truth,
    )
    .expect("reference run");
    assert_eq!(driven.len(), reference.questions_asked, "same question count");
    outcome_matches(&wire_outcome, &reference, &log)
        .expect("wire outcome must be bit-identical to the in-process run");
}

#[test]
fn restart_mid_campaign_preserves_bit_identical_outcome() {
    let d = generate(&tiny(1.0));
    let truth = |a: EntityId, b: EntityId| d.is_match(a, b);
    let params = CrowdParams { per_question: 3, ..CrowdParams::paper_default(23) };
    let state_dir = tmp_dir("restart");

    // Phase 1: drive four questions, then SIGTERM-equivalent shutdown
    // (the run loop checkpoints every campaign into the state dir).
    let server = TestServer::start(Some(state_dir.clone()));
    let id = create_preset_campaign(&server.client, 3, "restartable");
    let mut crowd = WireCrowd::new(&params);
    let first = drive_n(&server.client, &id, &mut crowd, &truth, Some(4)).expect("partial drive");
    assert_eq!(first.len(), 4);
    server.shutdown();
    assert!(
        state_dir.join(format!("{id}.campaign.json")).exists(),
        "shutdown must write the campaign state file"
    );

    // Phase 2: a new server process (new port) resumes the campaign from
    // its state file; the same crowd — whose RNG state carried across the
    // restart — finishes it.
    let server = TestServer::start(Some(state_dir.clone()));
    let status = server.client.get(&format!("/campaigns/{id}")).expect("resumed campaign status");
    assert_eq!(status.get("questions_asked").and_then(Json::as_usize), Some(4));
    let rest = drive(&server.client, &id, &mut crowd, &truth).expect("drive to completion");
    let wire_outcome = server.client.get(&format!("/campaigns/{id}/outcome")).unwrap();
    server.shutdown();

    let policy = CrowdPolicy { per_question: 3, ..CrowdPolicy::default() };
    let (reference, log) =
        reference_outcome(&d.kb1, &d.kb2, &RempConfig::default(), &policy, &params, &truth)
            .expect("reference run");
    assert_eq!(first.len() + rest.len(), reference.questions_asked);
    outcome_matches(&wire_outcome, &reference, &log)
        .expect("restarted campaign must stay bit-identical to the uninterrupted in-process run");
    std::fs::remove_dir_all(&state_dir).unwrap();
}

#[test]
fn concurrent_campaigns_complete_independently() {
    // Two campaigns on one server, driven from two threads at once with
    // interleaved workers; each must match its own in-process reference.
    let d = generate(&tiny(1.0));
    let server = TestServer::start(None);
    let ids = [
        create_preset_campaign(&server.client, 2, "alpha"),
        create_preset_campaign(&server.client, 2, "beta"),
    ];
    let seeds = [5u64, 6u64];

    let outcomes: Vec<(Json, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .zip(seeds)
            .map(|(id, seed)| {
                let client = server.client.clone();
                let d = &d;
                scope.spawn(move || {
                    let params =
                        CrowdParams { per_question: 2, ..CrowdParams::paper_default(seed) };
                    let mut crowd = WireCrowd::new(&params);
                    let truth = |a: EntityId, b: EntityId| d.is_match(a, b);
                    let driven = drive(&client, id, &mut crowd, &truth).expect("drive");
                    let outcome = client.get(&format!("/campaigns/{id}/outcome")).unwrap();
                    (outcome, driven.len())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("drive thread")).collect()
    });

    let listing = server.client.get("/campaigns").unwrap();
    assert_eq!(
        listing.get("campaigns").and_then(Json::as_array).map(<[Json]>::len),
        Some(2),
        "both campaigns listed"
    );
    server.shutdown();

    let policy = CrowdPolicy { per_question: 2, ..CrowdPolicy::default() };
    let truth = |a: EntityId, b: EntityId| d.is_match(a, b);
    for ((wire, driven), seed) in outcomes.iter().zip(seeds) {
        let params = CrowdParams { per_question: 2, ..CrowdParams::paper_default(seed) };
        let (reference, log) =
            reference_outcome(&d.kb1, &d.kb2, &RempConfig::default(), &policy, &params, &truth)
                .expect("reference");
        assert_eq!(*driven, reference.questions_asked, "seed {seed}");
        outcome_matches(wire, &reference, &log)
            .unwrap_or_else(|e| panic!("campaign with seed {seed} diverged: {e}"));
    }
}

#[test]
fn malformed_requests_get_typed_errors_and_never_kill_the_server() {
    let server = TestServer::start(None);
    let id = create_preset_campaign(&server.client, 2, "hardened");

    // Lease one real question so the conflict cases are reachable.
    let next = server.client.get(&format!("/campaigns/{id}/next?worker=w0")).unwrap();
    let qid = next
        .get("assignment")
        .and_then(|a| a.get("id"))
        .and_then(Json::as_str)
        .expect("an assignment")
        .to_owned();
    let answer = |worker: &str, question: &str, says: bool| {
        server.client.post(
            &format!("/campaigns/{id}/answers"),
            &Json::Obj(vec![
                ("worker".into(), Json::from(worker)),
                ("question".into(), Json::from(question)),
                ("says_match".into(), Json::from(says)),
            ]),
        )
    };
    answer("w0", &qid, true).expect("legitimate answer");

    // Each abuse gets the documented status + code, not a dead socket.
    let cases: Vec<(&str, u16, Option<&str>)> = vec![
        ("double answer", 409, Some("duplicate_answer")),
        ("wrong worker", 409, Some("no_lease")),
        ("unknown campaign", 404, Some("unknown_campaign")),
        ("unknown question", 404, Some("unknown_question")),
        ("bad question id", 400, Some("bad_question_id")),
        ("bad json body", 400, Some("bad_json")),
        ("missing worker", 400, Some("missing_worker")),
        ("unknown route", 404, Some("unknown_route")),
        ("bad method", 405, Some("method_not_allowed")),
        ("broken request line", 400, None),
    ];
    for (what, want_status, want_code) in cases {
        let err = match what {
            "double answer" => answer("w0", &qid, true).unwrap_err(),
            "wrong worker" => answer("never-leased", &qid, true).unwrap_err(),
            "unknown campaign" => server.client.get("/campaigns/zzz").unwrap_err(),
            "unknown question" => answer("w0", "q999999", true).unwrap_err(),
            "bad question id" => answer("w0", "seventeen", true).unwrap_err(),
            "bad json body" => {
                let (status, doc) = server
                    .client
                    .request_raw("POST", &format!("/campaigns/{id}/answers"), Some(b"{nope"))
                    .unwrap();
                assert_eq!(status, 400, "{what}");
                assert_eq!(
                    doc.get("error").and_then(|e| e.get("code")).and_then(Json::as_str),
                    Some("bad_json"),
                    "{what}"
                );
                continue;
            }
            "missing worker" => server.client.get(&format!("/campaigns/{id}/next")).unwrap_err(),
            "unknown route" => server.client.get("/campaigns/c0/teapot").unwrap_err(),
            "bad method" => {
                let (status, _) =
                    server.client.request("PUT", &format!("/campaigns/{id}"), None).unwrap();
                assert_eq!(status, 405, "{what}");
                continue;
            }
            "broken request line" => {
                // Raw garbage straight onto the socket.
                use std::io::{Read, Write};
                let mut stream = std::net::TcpStream::connect(server.client.addr()).unwrap();
                stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
                let mut out = String::new();
                stream.read_to_string(&mut out).unwrap();
                assert!(out.starts_with("HTTP/1.1 400"), "{what}: {out}");
                continue;
            }
            _ => unreachable!(),
        };
        assert_eq!(err.status(), Some(want_status), "{what}: {err}");
        if let Some(code) = want_code {
            assert_eq!(err.code(), Some(code), "{what}: {err}");
        }
    }

    // After all of that the server is still healthy and the campaign
    // still makes progress.
    let health = server.client.get("/healthz").unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    let next = server.client.get(&format!("/campaigns/{id}/next?worker=w1")).unwrap();
    assert!(next.get("assignment").is_some());
    server.shutdown();
}

#[test]
fn lease_expiry_reissues_questions_over_http() {
    // The server runs on an injected manual clock: lease expiry is
    // driven by `clock.advance`, not by real sleeps — zero flake risk
    // on a slow runner, and the test is instant.
    let clock = Arc::new(ManualClock::new(0));
    let server = TestServer::start_on_clock(Arc::clone(&clock));
    let campaign = |lease_ms: u64| {
        let created = server
            .client
            .post(
                "/campaigns",
                &Json::Obj(vec![
                    ("preset".into(), Json::from("TINY")),
                    ("per_question".into(), Json::from(1usize)),
                    ("lease_ms".into(), Json::from(lease_ms)),
                ]),
            )
            .unwrap();
        created.get("id").and_then(Json::as_str).unwrap().to_owned()
    };
    let lease_of = |id: &str, worker: &str| {
        server
            .client
            .get(&format!("/campaigns/{id}/next?worker={worker}"))
            .unwrap()
            .get("assignment")
            .and_then(|a| a.get("id"))
            .and_then(Json::as_str)
            .map(str::to_owned)
    };

    // Part 1 — a *live* lease is exclusive. The lease is generous (60 s,
    // unlosable even on a crawling CI runner), per_question = 1: while
    // the ghost holds the first question, nobody else may get it.
    let id = campaign(60_000);
    let held = lease_of(&id, "ghost").expect("ghost gets the first question");
    assert_ne!(lease_of(&id, "w0"), Some(held), "a live lease must not be double-issued");

    // Part 2 — an *expired* lease re-enters the pool. A fresh campaign
    // with a 60 ms lease: the ghost takes the first question, vanishes,
    // and once the (virtual) clock passes the deadline the question
    // goes to the next worker.
    let id = campaign(60);
    let qid = lease_of(&id, "ghost").expect("ghost gets the first question");
    clock.advance(90);

    // Expired: the question re-enters the pool and w1 can take it...
    let retry = server.client.get(&format!("/campaigns/{id}/next?worker=w1")).unwrap();
    assert_eq!(
        retry.get("assignment").and_then(|a| a.get("id")).and_then(Json::as_str),
        Some(qid.as_str()),
        "expired lease must be re-issued"
    );
    // ...while the ghost's late answer is a typed conflict.
    let late = server
        .client
        .post(
            &format!("/campaigns/{id}/answers"),
            &Json::Obj(vec![
                ("worker".into(), Json::from("ghost")),
                ("question".into(), Json::from(qid.as_str())),
                ("says_match".into(), Json::from(true)),
            ]),
        )
        .unwrap_err();
    assert_eq!((late.status(), late.code()), (Some(409), Some("no_lease")));
    // The replacement worker's answer lands.
    let ack = server
        .client
        .post(
            &format!("/campaigns/{id}/answers"),
            &Json::Obj(vec![
                ("worker".into(), Json::from("w1")),
                ("question".into(), Json::from(qid.as_str())),
                ("says_match".into(), Json::from(true)),
            ]),
        )
        .unwrap();
    assert!(ack.get("submitted").is_some_and(|s| !matches!(s, Json::Null)));

    // The status reports the lease story: ghost + w1 issued, the
    // ghost's lease expired, and the question was re-issued once.
    let status = server.client.get(&format!("/campaigns/{id}")).unwrap();
    let leases = status.get("leases").expect("lease counters in status");
    assert_eq!(leases.get("issued").and_then(Json::as_u64), Some(2));
    assert_eq!(leases.get("expired").and_then(Json::as_u64), Some(1));
    assert_eq!(leases.get("reissued").and_then(Json::as_u64), Some(1));
    let quality = status.get("worker_quality").expect("worker quality summary in status");
    assert_eq!(quality.get("count").and_then(Json::as_usize), Some(2));
    assert!(quality.get("mean").and_then(Json::as_f64).is_some());

    // The workers endpoint lists both, with their estimator records.
    let workers = server.client.get(&format!("/campaigns/{id}/workers")).unwrap();
    assert_eq!(workers.get("count").and_then(Json::as_usize), Some(2));
    let names: Vec<&str> = workers
        .get("workers")
        .and_then(Json::as_array)
        .expect("workers array")
        .iter()
        .filter_map(|w| w.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, vec!["ghost", "w1"]);
    server.shutdown();
}

#[test]
fn pause_and_resume_gate_work_over_http() {
    let server = TestServer::start(None);
    let id = create_preset_campaign(&server.client, 2, "pausable");
    server.client.post(&format!("/campaigns/{id}/pause"), &Json::Obj(vec![])).unwrap();
    let err = server.client.get(&format!("/campaigns/{id}/next?worker=w0")).unwrap_err();
    assert_eq!((err.status(), err.code()), (Some(409), Some("paused")));
    let status = server.client.get(&format!("/campaigns/{id}")).unwrap();
    assert_eq!(status.get("paused").and_then(Json::as_bool), Some(true));
    server.client.post(&format!("/campaigns/{id}/resume"), &Json::Obj(vec![])).unwrap();
    let next = server.client.get(&format!("/campaigns/{id}/next?worker=w0")).unwrap();
    assert!(next.get("assignment").is_some_and(|a| !matches!(a, Json::Null)));
    server.shutdown();
}

#[test]
fn pretty_responses_parse_identically() {
    let server = TestServer::start(None);
    let id = create_preset_campaign(&server.client, 2, "pretty");
    let plain = server.client.get(&format!("/campaigns/{id}")).unwrap();
    let pretty = server.client.get(&format!("/campaigns/{id}?pretty=1")).unwrap();
    assert_eq!(plain, pretty, "?pretty=1 changes whitespace, not content");
    server.shutdown();
}

#[test]
fn metrics_events_and_healthz_expose_live_campaign_state() {
    use remp::obs::{names, Exposition};

    let d = generate(&tiny(1.0));
    let server = TestServer::start(None);
    let id = create_preset_campaign(&server.client, 2, "observed");

    // The enriched health document.
    let health = server.client.get("/healthz").expect("healthz");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert!(health.get("version").and_then(Json::as_str).is_some_and(|v| !v.is_empty()));
    assert!(health.get("uptime_s").and_then(Json::as_f64).is_some_and(|s| s >= 0.0));
    assert!(health.get("campaigns").and_then(Json::as_u64).is_some_and(|n| n >= 1));
    assert_eq!(health.get("observability").and_then(Json::as_bool), Some(true));

    // Drive the campaign to completion so every family has data.
    let params = CrowdParams { per_question: 2, ..CrowdParams::paper_default(9) };
    let mut crowd = WireCrowd::new(&params);
    let truth = |a: EntityId, b: EntityId| d.is_match(a, b);
    let driven = drive(&server.client, &id, &mut crowd, &truth).expect("drive");
    let status = server.client.get(&format!("/campaigns/{id}")).unwrap();

    // /metrics parses as Prometheus text exposition, and the gauges and
    // lease counters labelled with this campaign carry exactly the
    // numbers the status endpoint reports (single source of truth).
    // Global (unlabelled) totals are shared with concurrently running
    // tests, so only per-campaign series are asserted by value.
    let (code, text) = server.client.get_text("/metrics").expect("scrape");
    assert_eq!(code, 200);
    let expo = Exposition::parse(&text).expect("valid exposition");
    let by_campaign = |name: &str| expo.value(name, &[("campaign", &id)]);
    assert_eq!(
        by_campaign(names::CAMPAIGN_QUESTIONS_ASKED),
        status.get("questions_asked").and_then(Json::as_f64)
    );
    assert_eq!(by_campaign(names::CAMPAIGN_OPEN_QUESTIONS), Some(0.0));
    assert_eq!(by_campaign(names::CAMPAIGN_COMPLETE), Some(1.0));
    let leases = status.get("leases").expect("lease block");
    for (metric, key) in [
        (names::LEASES_ISSUED_TOTAL, "issued"),
        (names::LEASES_EXPIRED_TOTAL, "expired"),
        (names::LEASES_REISSUED_TOTAL, "reissued"),
    ] {
        assert_eq!(by_campaign(metric), leases.get(key).and_then(Json::as_f64), "{metric}");
    }
    for family in [
        names::HTTP_REQUESTS_TOTAL,
        names::HTTP_REQUEST_SECONDS,
        names::STAGE_SECONDS,
        names::QUESTIONS_ASKED_TOTAL,
        names::ANSWERS_SUBMITTED_TOTAL,
    ] {
        assert!(expo.has_family(family), "family {family} missing from the scrape");
    }

    // The campaign's structured event ring: a start event plus one
    // "question submitted" per driven question, scoped to this id.
    let events = server.client.get(&format!("/campaigns/{id}/events?limit=1000")).unwrap();
    assert_eq!(events.get("campaign").and_then(Json::as_str), Some(id.as_str()));
    let entries = events.get("events").and_then(Json::as_array).expect("events array");
    assert!(entries.iter().all(|e| e.get("campaign").and_then(Json::as_str) == Some(&id)));
    let submitted = entries
        .iter()
        .filter(|e| e.get("msg").and_then(Json::as_str) == Some("question submitted"))
        .count();
    assert_eq!(submitted, driven.len(), "one submit event per completed question");
    assert!(entries
        .iter()
        .any(|e| e.get("msg").and_then(Json::as_str) == Some("campaign started")));

    // Events for an unknown campaign are a typed 404, like every route.
    let err = server.client.get("/campaigns/nope/events").unwrap_err();
    assert_eq!((err.status(), err.code()), (Some(404), Some("unknown_campaign")));
    server.shutdown();
}

#[test]
fn keep_alive_connections_are_reused_and_reported() {
    use remp::obs::{names, Exposition};

    let server = TestServer::start(None);
    create_preset_campaign(&server.client, 2, "reused");
    let before = server.client.reuse_count();
    for _ in 0..5 {
        server.client.get("/healthz").expect("healthz over keep-alive");
    }
    assert_eq!(
        server.client.reuse_count(),
        before + 5,
        "five more requests on one client must reuse one connection five times"
    );

    // The server counted the reuse too, and exposes serving pressure.
    let (_, text) = server.client.get_text("/metrics").expect("scrape");
    let expo = Exposition::parse(&text).expect("valid exposition");
    assert!(
        expo.value(names::HTTP_KEEPALIVE_REUSE_TOTAL, &[]).is_some_and(|v| v >= 5.0),
        "remp_http_keepalive_reuse_total must count the reused requests"
    );
    assert!(
        expo.value(names::HTTP_CONNECTIONS_OPEN, &[]).is_some_and(|v| v >= 1.0),
        "remp_http_connections_open must count this client's socket"
    );
    assert!(expo.value(names::LONGPOLL_WAITERS, &[]).is_some(), "waiter gauge registered");

    let health = server.client.get("/healthz").unwrap();
    assert!(health.get("connections_open").and_then(Json::as_u64).is_some_and(|n| n >= 1));
    assert_eq!(health.get("longpoll_waiters").and_then(Json::as_u64), Some(0));
    assert_eq!(health.get("wal_bytes").and_then(Json::as_u64), Some(0), "no state dir, no WAL");
    server.shutdown();
}

/// Leases every open question to `w0` so nothing is assignable to
/// anyone else, and returns the held question ids.
fn lease_everything(server: &TestServer, id: &str) -> Vec<String> {
    let mut held = Vec::new();
    loop {
        let next = server.client.get(&format!("/campaigns/{id}/next?worker=w0")).unwrap();
        match next.get("assignment") {
            Some(Json::Null) | None => break,
            Some(a) => held.push(a.get("id").and_then(Json::as_str).unwrap().to_owned()),
        }
    }
    held
}

#[test]
fn long_poll_parks_until_an_answer_frees_a_question() {
    use std::time::Duration;

    let server = TestServer::start(None);
    // per_question = 1: one worker can hold every open question.
    let id = create_preset_campaign(&server.client, 1, "longpoll");
    let held = lease_everything(&server, &id);
    assert!(!held.is_empty());

    // w1 has nothing to take; with wait_ms it parks server-side
    // instead of getting an instant null.
    let poll_client = server.client.clone();
    let poll_id = id.clone();
    let waiter = std::thread::spawn(move || {
        poll_client.get(&format!("/campaigns/{poll_id}/next?worker=w1&wait_ms=20000")).unwrap()
    });
    let mut parked = false;
    for _ in 0..200 {
        let health = server.client.get("/healthz").unwrap();
        if health.get("longpoll_waiters").and_then(Json::as_u64) == Some(1) {
            parked = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(parked, "the long-poll must park, not busy-wait a handler");

    // w0's answers complete questions and open new ones; the notifier
    // wakes the dispatcher, which hands one to the parked w1.
    let mut woken = false;
    'answers: for question in &held {
        server
            .client
            .post(
                &format!("/campaigns/{id}/answers"),
                &Json::Obj(vec![
                    ("worker".into(), Json::from("w0")),
                    ("question".into(), Json::from(question.as_str())),
                    ("says_match".into(), Json::from(true)),
                ]),
            )
            .expect("answer while a long-poll is parked");
        for _ in 0..100 {
            if waiter.is_finished() {
                woken = true;
                break 'answers;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    assert!(woken, "an accepted answer must wake the parked long-poll");
    let doc = waiter.join().expect("long-poll thread");
    if doc.get("complete").and_then(Json::as_bool) == Some(false) {
        assert!(
            doc.get("assignment").is_some_and(|a| !matches!(a, Json::Null)),
            "woken with work: {doc}"
        );
    }
    server.shutdown();
}

#[test]
fn long_poll_returns_the_empty_answer_after_the_wait_expires() {
    use std::time::{Duration, Instant};

    let server = TestServer::start(None);
    let id = create_preset_campaign(&server.client, 1, "expiring");
    let held = lease_everything(&server, &id);
    assert!(!held.is_empty());

    let t0 = Instant::now();
    let doc = server.client.get(&format!("/campaigns/{id}/next?worker=w1&wait_ms=300")).unwrap();
    assert!(
        t0.elapsed() >= Duration::from_millis(250),
        "an unanswerable long-poll must hold for the requested wait"
    );
    assert!(matches!(doc.get("assignment"), Some(Json::Null)), "{doc}");
    assert_eq!(doc.get("complete").and_then(Json::as_bool), Some(false));
    assert!(
        doc.get("retry_at_ms").and_then(Json::as_u64).is_some(),
        "with live leases the response must carry the earliest retry hint: {doc}"
    );
    server.shutdown();
}

#[cfg(unix)]
#[test]
fn idle_connections_time_out_without_consuming_a_handler() {
    use std::io::Read;
    use std::net::TcpStream;
    use std::time::Duration;

    use remp::par::Parallelism;

    // Two handlers, eight silent sockets: if an idle connection cost a
    // handler thread, /healthz below would stall for the read timeout.
    let server = TestServer::start_config(ServerConfig {
        parallelism: Parallelism::Fixed(2),
        keepalive_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let idlers: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(server.client.addr()).expect("connect an idle socket"))
        .collect();

    let t0 = std::time::Instant::now();
    for _ in 0..5 {
        let health = server.client.get("/healthz").expect("healthz with idlers connected");
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    }
    assert!(t0.elapsed() < Duration::from_secs(5), "idle sockets must not starve the handler pool");

    // Past the keep-alive timeout the server reaps them: EOF, not hang.
    for mut socket in idlers {
        socket.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 1];
        let n = socket.read(&mut buf);
        assert!(matches!(n, Ok(0)), "idle socket must be closed by the server, got {n:?}");
    }
    server.shutdown();
}
