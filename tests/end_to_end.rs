//! End-to-end integration tests: the full Remp pipeline against the
//! dataset presets and the baseline systems, spanning every crate.

use remp::baselines::{power, sigma, PowerConfig, SigmaConfig};
use remp::core::{evaluate_matches, prepare, Remp, RempConfig};
use remp::crowd::{FixedErrorCrowd, LabelSource, OracleCrowd, SimulatedCrowd};
use remp::datasets::{dblp_acm, generate, iimb, imdb_yago};

#[test]
fn remp_resolves_iimb_with_simulated_crowd() {
    let d = generate(&iimb(0.5));
    let remp = Remp::new(RempConfig::default());
    let mut crowd = SimulatedCrowd::paper_default(7);
    let out = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);
    let eval = evaluate_matches(out.matches.iter().copied(), &d.gold);
    assert!(eval.f1 > 0.85, "IIMB F1 = {}", eval.f1);
    assert!(eval.precision > 0.9, "IIMB precision = {}", eval.precision);
    assert!(
        out.questions_asked < d.num_gold() / 2,
        "crowd cost must stay far below one question per match, got {}",
        out.questions_asked
    );
}

#[test]
fn remp_beats_power_on_question_count_iimb() {
    let d = generate(&iimb(0.5));
    let config = RempConfig::default();
    let prep = prepare(&d.kb1, &d.kb2, &config);
    let truth = |a, b| d.is_match(a, b);

    let remp = Remp::new(config.clone());
    let mut crowd = SimulatedCrowd::paper_default(11);
    let remp_out = remp.run_prepared(&d.kb1, &d.kb2, prep.clone(), &truth, &mut crowd);
    let remp_eval = evaluate_matches(remp_out.matches.iter().copied(), &d.gold);

    let mut crowd = SimulatedCrowd::paper_default(11);
    let pow =
        power(&prep.candidates, &prep.sim_vectors, &truth, &mut crowd, &PowerConfig::default());
    let pow_eval = evaluate_matches(pow.matches.iter().copied(), &d.gold);

    assert!(
        remp_out.questions_asked < pow.questions,
        "Remp {} questions vs POWER {}",
        remp_out.questions_asked,
        pow.questions
    );
    assert!(
        remp_eval.f1 >= pow_eval.f1 - 0.02,
        "Remp F1 {} must not trail POWER {}",
        remp_eval.f1,
        pow_eval.f1
    );
}

#[test]
fn error_tolerance_across_crowd_error_rates() {
    // Fig. 3 invariant: F1 stays roughly stable as worker error grows,
    // thanks to 5-label redundancy and Eq. 17.
    let d = generate(&iimb(0.4));
    let mut f1s = Vec::new();
    for error in [0.05, 0.15, 0.25] {
        let remp = Remp::new(RempConfig::default());
        let mut crowd = FixedErrorCrowd::new(error, 5, 99);
        let out = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);
        let eval = evaluate_matches(out.matches.iter().copied(), &d.gold);
        f1s.push(eval.f1);
    }
    for (i, f1) in f1s.iter().enumerate() {
        assert!(*f1 > 0.8, "error level {i}: F1 {f1}");
    }
    assert!(f1s[0] - f1s[2] < 0.12, "F1 should be robust to error rate: {f1s:?}");
}

#[test]
fn sigma_and_remp_propagation_share_er_graph() {
    // Stage-1 outputs plug into both Remp and the machine-only baselines.
    let d = generate(&dblp_acm(0.25));
    let config = RempConfig::default();
    let prep = prepare(&d.kb1, &d.kb2, &config);
    let out = sigma(&prep.candidates, &prep.graph, &[], &SigmaConfig::default());
    let eval = evaluate_matches(out.matches.iter().copied(), &d.gold);
    assert!(eval.precision > 0.5, "SiGMa precision {}", eval.precision);
    // SiGMa emits only retained candidates.
    for &(u1, u2) in &out.matches {
        assert!(prep.candidates.id_of((u1, u2)).is_some());
    }
}

#[test]
fn budget_is_respected_on_heterogeneous_dataset() {
    let d = generate(&imdb_yago(0.15));
    let remp = Remp::new(RempConfig::default().with_budget(12));
    let mut crowd = OracleCrowd::new();
    let out = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);
    assert!(out.questions_asked <= 12);
    assert_eq!(out.questions_asked, crowd.questions_asked());
}

#[test]
fn oracle_runs_are_deterministic() {
    let d = generate(&iimb(0.3));
    let run = || {
        let remp = Remp::new(RempConfig::default());
        let mut crowd = OracleCrowd::new();
        let out = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);
        (out.matches.clone(), out.questions_asked, out.loops)
    };
    assert_eq!(run(), run());
}

#[test]
fn matches_reference_valid_entities() {
    let d = generate(&imdb_yago(0.1));
    let remp = Remp::new(RempConfig::default());
    let mut crowd = SimulatedCrowd::paper_default(3);
    let out = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);
    for &(u1, u2) in &out.matches {
        assert!(u1.index() < d.kb1.num_entities());
        assert!(u2.index() < d.kb2.num_entities());
    }
}
