//! File-level ingestion tests: the committed fixtures stay loadable and
//! generator-stable, and malformed input fails with typed errors citing
//! file and line — never a panic.

use std::fs;
use std::path::{Path, PathBuf};

use remp::datasets::{generate, tiny};
use remp::ingest::{load_kb, FileDataset, IngestError};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tiny")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("remp-files-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The committed fixture pair under `tests/fixtures/tiny/` is exactly
/// what the TINY preset generates — so the text formats (and the
/// generator's determinism) are pinned by files in version control.
#[test]
fn committed_fixtures_match_the_generator() {
    let dataset = generate(&tiny(1.0));
    let dir = fixtures();
    let loaded =
        FileDataset::load("tiny", &dir.join("kb1.nt"), &dir.join("kb2.nt"), &dir.join("gold.tsv"))
            .unwrap();
    assert_eq!(loaded.kb1, dataset.kb1);
    assert_eq!(loaded.kb2, dataset.kb2);
    assert_eq!(loaded.gold, dataset.gold);
}

#[test]
fn missing_files_are_io_errors_naming_the_path() {
    let err = load_kb(Path::new("/nonexistent/kb.nt"), "x").unwrap_err();
    assert!(matches!(err, IngestError::Io { .. }), "{err}");
    assert!(err.to_string().contains("/nonexistent/kb.nt"), "{err}");
}

#[test]
fn malformed_ntriples_line_is_cited() {
    let dir = scratch("nt-bad");
    let path = dir.join("bad.nt");
    fs::write(
        &path,
        "<urn:a> <http://www.w3.org/2000/01/rdf-schema#label> \"ok\" .\n\
         # comment\n\
         <urn:a> <urn:p> \"unterminated\n",
    )
    .unwrap();
    let err = load_kb(&path, "x").unwrap_err();
    assert_eq!(err.line(), Some(3), "{err}");
    assert!(err.path().ends_with("bad.nt"), "{err}");
    assert!(err.to_string().contains("bad.nt:3"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn csv_dangling_reference_is_cited() {
    let dir = scratch("csv-bad");
    fs::write(dir.join("entities.csv"), "id,label\np1,Ada\n").unwrap();
    fs::write(dir.join("attributes.csv"), "entity,attribute,kind,value\n").unwrap();
    fs::write(
        dir.join("relationships.csv"),
        "subject,relationship,object\np1,knows,p1\np1,knows,ghost\n",
    )
    .unwrap();
    let err = load_kb(&dir, "x").unwrap_err();
    assert_eq!(err.line(), Some(3), "{err}");
    assert!(err.path().ends_with("relationships.csv"), "{err}");
    assert!(err.to_string().contains("ghost"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gold_with_unknown_entity_is_cited() {
    let dir = scratch("gold-bad");
    let fixture = fixtures();
    let gold = dir.join("gold.tsv");
    fs::write(&gold, "urn:remp:e0\turn:remp:e0\nurn:remp:e0\turn:remp:e9999\n").unwrap();
    let err = FileDataset::load("tiny", &fixture.join("kb1.nt"), &fixture.join("kb2.nt"), &gold)
        .unwrap_err();
    assert_eq!(err.line(), Some(2), "{err}");
    assert!(err.to_string().contains("e9999"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let dir = scratch("rkb-bad");
    let loaded = load_kb(&fixtures().join("kb1.nt"), "tiny-kb1").unwrap();
    let path = dir.join("kb1.rkb");
    remp::ingest::write_snapshot(&loaded.kb, &loaded.external_ids, &path).unwrap();
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    let err = load_kb(&path, "x").unwrap_err();
    assert!(matches!(err, IngestError::Snapshot { .. }), "{err}");
    assert!(err.to_string().contains("truncated"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

/// A text file that merely *looks* like a snapshot by extension gets a
/// clear "bad magic" error instead of a parse attempt.
#[test]
fn mislabeled_snapshot_extension_is_rejected_cleanly() {
    let dir = scratch("rkb-mislabel");
    let path = dir.join("actually-text.rkb");
    fs::write(&path, "<urn:a> <urn:p> <urn:b> .\n").unwrap();
    let err = load_kb(&path, "x").unwrap_err();
    assert!(err.to_string().contains("bad magic"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}
