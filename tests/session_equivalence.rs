//! The acceptance bar for the session redesign: hand-driving a
//! `RempSession` must produce the *identical* `RempOutcome` (matches,
//! resolutions, `#Q`, `#L`) as the convenience wrapper `Remp::run` on the
//! same dataset with the same crowd seed — on more than one preset and
//! more than one crowd model.

use remp::core::{Remp, RempConfig, RempOutcome};
use remp::crowd::{LabelSource, OracleCrowd, SimulatedCrowd};
use remp::datasets::{dblp_acm, generate, iimb, GeneratedDataset};

/// Drives a session exactly as `Remp::run` does, but by hand through the
/// public question/answer API.
fn run_by_hand(remp: &Remp, d: &GeneratedDataset, crowd: &mut dyn LabelSource) -> RempOutcome {
    let mut session = remp.begin(&d.kb1, &d.kb2).expect("default config is valid");
    while let Some(batch) = session.next_batch().expect("no protocol errors when fully draining") {
        for q in &batch.questions {
            let labels = crowd.label(d.is_match(q.pair.0, q.pair.1));
            let receipt = session.submit(q.id, labels).expect("fresh question ids are valid");
            assert!((0.0..=1.0).contains(&receipt.posterior));
        }
    }
    session.finish()
}

fn assert_equivalent(d: &GeneratedDataset, config: RempConfig, crowd_seed: u64) {
    let remp = Remp::new(config);

    let mut crowd = SimulatedCrowd::paper_default(crowd_seed);
    let by_hand = run_by_hand(&remp, d, &mut crowd);
    let hand_labels = crowd.labels_collected();

    let mut crowd = SimulatedCrowd::paper_default(crowd_seed);
    let by_run = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);

    assert_eq!(by_hand, by_run, "session and run outcomes must be identical");
    assert_eq!(
        hand_labels,
        crowd.labels_collected(),
        "both drivers must consume the crowd identically"
    );
    assert!(by_hand.questions_asked > 0, "the equivalence must be exercised by real questions");
}

#[test]
fn session_equals_run_on_iimb() {
    let d = generate(&iimb(0.4));
    assert_equivalent(&d, RempConfig::default(), 42);
}

#[test]
fn session_equals_run_on_dblp_acm() {
    let d = generate(&dblp_acm(0.3));
    assert_equivalent(&d, RempConfig::default(), 7);
}

#[test]
fn session_equals_run_under_budget_and_small_mu() {
    let d = generate(&iimb(0.3));
    assert_equivalent(&d, RempConfig::default().with_mu(3).with_budget(17), 3);
}

#[test]
fn session_equals_run_with_oracle_crowd() {
    let d = generate(&iimb(0.3));
    let remp = Remp::default();
    let mut crowd = OracleCrowd::new();
    let by_hand = run_by_hand(&remp, &d, &mut crowd);
    let mut crowd = OracleCrowd::new();
    let by_run = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);
    assert_eq!(by_hand, by_run);
}
