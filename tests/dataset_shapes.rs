//! Shape invariants of the dataset presets — the properties every
//! experiment's interpretation depends on (see DESIGN.md §2).

use remp::core::{pair_completeness, prepare, RempConfig};
use remp::datasets::{dblp_acm, dbpedia_yago, generate, iimb, imdb_yago};

#[test]
fn iimb_full_overlap_identical_schemas() {
    let d = generate(&iimb(1.0));
    assert_eq!(d.kb1.num_entities(), 365);
    assert_eq!(d.num_gold(), 365, "IIMB matches every entity");
    assert_eq!(d.kb1.num_attrs(), d.kb2.num_attrs());
    assert_eq!(d.kb1.num_rels(), d.kb2.num_rels());
    assert_eq!(d.gold_attr_matches.len(), 12, "12 attributes as in Table II");
}

#[test]
fn dblp_acm_asymmetry_and_single_relationship() {
    let d = generate(&dblp_acm(1.0));
    assert!(d.kb2.num_entities() > 3 * d.kb1.num_entities(), "KB2 ≫ KB1");
    assert_eq!(d.kb1.num_rels(), 1, "one relationship type drives §VIII-A obs. 4");
    // Clean labels: high initial-match fraction among gold.
    let exact = d.gold.iter().filter(|&&(a, b)| d.kb1.label(a) == d.kb2.label(b)).count();
    assert!(exact * 2 > d.num_gold(), "most D-A labels match exactly");
}

#[test]
fn imdb_yago_heterogeneous_schema() {
    let d = generate(&imdb_yago(1.0));
    assert_eq!(d.gold_attr_matches.len(), 4, "Table IV: 4 reference matches");
    assert!(d.kb2.num_attrs() >= d.kb1.num_attrs(), "YAGO side carries the junk tail");
    assert!(d.kb1.num_rels() != d.kb2.num_rels(), "relationship vocabularies differ across KBs");
}

#[test]
fn dbpedia_yago_missing_labels_cap_pc() {
    let d = generate(&dbpedia_yago(0.4));
    assert_eq!(d.gold_attr_matches.len(), 19, "Table IV: 19 reference matches");
    let config = RempConfig::default();
    let prep = prepare(&d.kb1, &d.kb2, &config);
    let pc = pair_completeness(prep.candidates.ids().map(|p| prep.candidates.pair(p)), &d.gold);
    assert!(pc < 0.95, "missing labels must cap PC, got {pc}");
    assert!(pc > 0.7, "PC should stay usable, got {pc}");
    // D-Y has the largest isolated share.
    let iso = d.kb1.stats().isolated_fraction();
    assert!(iso > 0.3, "D-Y isolation {iso}");
}

#[test]
fn presets_scale_coherently() {
    for preset in [iimb(0.5), dblp_acm(0.5), imdb_yago(0.5), dbpedia_yago(0.5)] {
        let small = generate(&preset);
        assert!(small.num_gold() > 0, "{}: empty gold at scale 0.5", small.name);
        assert!(small.kb1.num_rel_triples() > 0, "{}: presets must stay relational", small.name);
        // Gold standard is 1:1 and references valid ids.
        for &(u1, u2) in &small.gold {
            assert!(u1.index() < small.kb1.num_entities());
            assert!(u2.index() < small.kb2.num_entities());
        }
    }
}
