//! Cross-crate stage integration: each pipeline stage's output feeds the
//! next with the invariants the paper relies on.

use remp::core::{pair_completeness, prepare, reduction_ratio, RempConfig};
use remp::datasets::{dbpedia_yago, generate, iimb, imdb_yago};
use remp::ergraph::{
    build_sim_vectors, generate_candidates, initial_matches, match_attributes, prune,
    AttrMatchConfig,
};
use remp::par::Parallelism;
use remp::propagation::{inferred_sets_dijkstra, ConsistencyTable, ProbErGraph};
use remp::selection::{benefit, select_questions};

/// Stage tests run under the config's policy (`Auto`), so the CI
/// thread-matrix (`REMP_THREADS=1` / `REMP_THREADS=4`) exercises both the
/// sequential and the pooled code paths here.
fn par() -> Parallelism {
    Parallelism::Auto
}

#[test]
fn attribute_matching_one_to_one_beats_unconstrained_precision() {
    // Table IV invariant on the heterogeneous presets.
    for spec in [imdb_yago(0.2), dbpedia_yago(0.2)] {
        let d = generate(&spec);
        let cands = generate_candidates(&d.kb1, &d.kb2, 0.3, &par());
        let init = initial_matches(&d.kb1, &d.kb2, &cands);
        let gold = &d.gold_attr_matches;
        let precision_of = |one_to_one: bool| {
            let al = match_attributes(
                &d.kb1,
                &d.kb2,
                &cands,
                &init,
                &AttrMatchConfig { one_to_one, ..AttrMatchConfig::default() },
            );
            let preds: Vec<(String, String)> = al
                .pairs
                .iter()
                .map(|&(a1, a2, _)| {
                    (d.kb1.attr_name(a1).to_owned(), d.kb2.attr_name(a2).to_owned())
                })
                .collect();
            if preds.is_empty() {
                return (1.0, 0);
            }
            let correct = preds.iter().filter(|p| gold.contains(p)).count();
            (correct as f64 / preds.len() as f64, preds.len())
        };
        let (p_strict, n_strict) = precision_of(true);
        let (p_loose, n_loose) = precision_of(false);
        assert!(n_strict > 0, "{}: no attribute matches found", d.name);
        assert!(
            p_strict >= p_loose - 1e-9,
            "{}: 1:1 precision {} must be ≥ unconstrained {}",
            d.name,
            p_strict,
            p_loose
        );
        assert!(n_loose >= n_strict, "unconstrained can only add pairs");
    }
}

#[test]
fn pruning_preserves_most_gold_while_reducing() {
    // Table V invariant: meaningful RR with bounded PC loss.
    let d = generate(&imdb_yago(0.25));
    let config = RempConfig::default();
    let cands = generate_candidates(&d.kb1, &d.kb2, config.label_sim_threshold, &par());
    let init = initial_matches(&d.kb1, &d.kb2, &cands);
    let al = match_attributes(&d.kb1, &d.kb2, &cands, &init, &config.attr);
    let vecs = build_sim_vectors(&d.kb1, &d.kb2, &cands, &al, config.literal_threshold, &par());
    let retained = prune(&cands, &vecs, config.knn_k, &par());

    let pc_before = pair_completeness(cands.iter().map(|(_, p)| p), &d.gold);
    let pc_after = pair_completeness(retained.iter().map(|&p| cands.pair(p)), &d.gold);
    let rr = reduction_ratio(cands.len(), retained.len());

    assert!(rr > 0.1, "expected meaningful reduction, RR = {rr}");
    assert!(pc_before - pc_after < 0.05, "PC loss too high: {pc_before} → {pc_after}");
}

#[test]
fn pair_completeness_grows_with_k() {
    // Fig. 4 invariant: larger k retains at least as many gold pairs.
    let d = generate(&iimb(0.4));
    let config = RempConfig::default();
    let cands = generate_candidates(&d.kb1, &d.kb2, config.label_sim_threshold, &par());
    let init = initial_matches(&d.kb1, &d.kb2, &cands);
    let al = match_attributes(&d.kb1, &d.kb2, &cands, &init, &config.attr);
    let vecs = build_sim_vectors(&d.kb1, &d.kb2, &cands, &al, config.literal_threshold, &par());
    let mut last = 0.0;
    for k in [1usize, 4, 7, 10, 13] {
        let retained = prune(&cands, &vecs, k, &par());
        let pc = pair_completeness(retained.iter().map(|&p| cands.pair(p)), &d.gold);
        assert!(pc >= last - 1e-9, "PC must be non-decreasing in k");
        last = pc;
    }
}

#[test]
fn propagation_stack_builds_consistent_probabilistic_graph() {
    let d = generate(&iimb(0.3));
    let config = RempConfig::default();
    let prep = prepare(&d.kb1, &d.kb2, &config);
    let cons = ConsistencyTable::estimate(
        &d.kb1,
        &d.kb2,
        &prep.candidates,
        &prep.graph,
        &prep.initial,
        &par(),
    );
    assert_eq!(cons.len(), prep.graph.num_labels());
    let pg = ProbErGraph::build(
        &d.kb1,
        &d.kb2,
        &prep.candidates,
        &prep.graph,
        &cons,
        &config.propagation,
        &par(),
    );
    assert_eq!(pg.num_vertices(), prep.candidates.len());
    // Edge probabilities are probabilities.
    for v in prep.candidates.ids() {
        for &(_, p) in pg.edges_from(v) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
    // Inferred sets respect τ and include self.
    let inf = inferred_sets_dijkstra(&pg, config.tau, &par());
    for v in prep.candidates.ids() {
        let set = inf.inferred(v);
        assert!(set.iter().any(|&(p, pr)| p == v && (pr - 1.0).abs() < 1e-12));
        for &(_, pr) in set {
            assert!(pr >= config.tau - 1e-9);
        }
    }
}

#[test]
fn selection_over_real_inferred_sets_is_effective() {
    let d = generate(&iimb(0.3));
    let config = RempConfig::default();
    let prep = prepare(&d.kb1, &d.kb2, &config);
    let cons = ConsistencyTable::estimate(
        &d.kb1,
        &d.kb2,
        &prep.candidates,
        &prep.graph,
        &prep.initial,
        &par(),
    );
    let pg = ProbErGraph::build(
        &d.kb1,
        &d.kb2,
        &prep.candidates,
        &prep.graph,
        &cons,
        &config.propagation,
        &par(),
    );
    let inf = inferred_sets_dijkstra(&pg, config.tau, &par());
    let priors: Vec<f64> = prep.candidates.ids().map(|p| prep.candidates.prior(p)).collect();
    let eligible = vec![true; prep.candidates.len()];
    let all: Vec<_> = prep.candidates.ids().collect();

    let q1 = select_questions(&all, &inf, &priors, &eligible, 1, &par());
    let q10 = select_questions(&all, &inf, &priors, &eligible, 10, &par());
    assert_eq!(q1.len(), 1);
    assert!(q10.len() >= q1.len());
    assert_eq!(q10[0], q1[0], "greedy prefix property");
    let b1 = benefit(&q1, &inf, &priors, &eligible);
    let b10 = benefit(&q10, &inf, &priors, &eligible);
    assert!(b10 >= b1 - 1e-9, "benefit monotone in question count");
    assert!(b1 > 1.0, "the best IIMB question should infer more than itself");
}
