//! Shared helpers for the equivalence suites: run a full campaign and
//! reduce *everything observable about it* — question order, outcome,
//! metrics, mid-campaign checkpoint JSON — to a single 64-bit digest.
//!
//! The digests pin campaign outputs across *code changes*, not just
//! across thread counts: the constants in the suites were captured
//! before the dense-id layout refactor (packed pair keys, CSR
//! adjacency), so any layout change that perturbs question order,
//! matches, metrics or checkpoint bytes fails the pin.

use remp::core::{evaluate_matches, Remp, RempConfig, RempOutcome};
use remp::crowd::{LabelSource, OracleCrowd};
use remp::datasets::{generate, preset_by_name, GeneratedDataset};
use remp::kb::EntityId;
use remp::par::Parallelism;

/// Every preset at a laptop-friendly scale — "every preset" is the
/// point: each one stresses a different KB shape (homogeneous,
/// heterogeneous, cross-type relationships).
pub fn presets() -> Vec<GeneratedDataset> {
    [("IIMB", 0.25), ("D-A", 0.2), ("I-Y", 0.15), ("D-Y", 0.15), ("TINY", 1.0)]
        .into_iter()
        .map(|(name, scale)| generate(&preset_by_name(name, scale).expect("known preset")))
        .collect()
}

/// Everything observable about one campaign.
pub struct Observed {
    pub transcript: Vec<(usize, EntityId, EntityId)>,
    pub mid_checkpoint: Option<String>,
    pub outcome: RempOutcome,
}

/// Runs one oracle-answered campaign to completion, recording the full
/// question transcript and a checkpoint right after the first batch.
pub fn observe_campaign(
    dataset: &GeneratedDataset,
    parallelism: Parallelism,
    incremental: Option<bool>,
) -> Observed {
    let config = RempConfig::default().with_parallelism(parallelism);
    let remp = Remp::new(config);
    let mut crowd = OracleCrowd::new();
    let mut session = remp.begin(&dataset.kb1, &dataset.kb2).expect("valid config");
    if let Some(incremental) = incremental {
        session.set_incremental(incremental);
    }
    let mut transcript = Vec::new();
    let mut mid_checkpoint = None;
    while let Some(batch) = session.next_batch().expect("no protocol errors") {
        for q in &batch.questions {
            transcript.push((batch.loop_index, q.pair.0, q.pair.1));
            let labels = crowd.label(dataset.is_match(q.pair.0, q.pair.1));
            session.submit(q.id, labels).expect("fresh question");
        }
        if mid_checkpoint.is_none() {
            mid_checkpoint = Some(session.checkpoint().to_json_string());
        }
    }
    Observed { transcript, mid_checkpoint, outcome: session.finish() }
}

/// FNV-1a over the `Debug` rendering of the whole observable record.
///
/// `Debug` for `f64` prints the shortest round-trip decimal, so two
/// different finite floats never collapse to one digest; the rendering
/// has no `HashMap` iteration order anywhere (transcript and outcome
/// are `Vec`s, the checkpoint is canonical JSON).
pub fn campaign_digest(dataset: &GeneratedDataset, observed: &Observed) -> u64 {
    let eval = evaluate_matches(observed.outcome.matches.iter().copied(), &dataset.gold);
    let rendered = format!(
        "{:?}|{:?}|{:?}|{:?}",
        observed.transcript, observed.outcome, eval, observed.mid_checkpoint
    );
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in rendered.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
