//! Sharded multi-process campaigns are **bit-identical** to the
//! single-process runner: for every dataset preset, `rempctl scale-run
//! --workers N` (real coordinator + N separate `rempctl shard-worker`
//! OS processes over HTTP) must merge to exactly the `MergedOutcome`
//! that `run_sharded_local` computes in process — matches, question
//! transcript digest, and evaluation digest included.

use std::path::PathBuf;
use std::process::Command;

use remp::core::RempConfig;
use remp::datasets::{generate, preset_by_name};
use remp::ingest::LoadedKb;
use remp::scale::{run_sharded_local, write_campaign, CrowdSpec, MergedOutcome, PlanMode};
use remp_json::Json;

/// Writes a sharded campaign for a preset and returns its directory.
fn campaign_dir(tag: &str, preset: &str, scale: f64, crowd: CrowdSpec) -> PathBuf {
    let spec = preset_by_name(preset, scale).unwrap();
    let d = generate(&spec);
    let kb1 = LoadedKb {
        kb: d.kb1.clone(),
        external_ids: (0..d.kb1.num_entities()).map(|i| format!("a{i}")).collect(),
    };
    let kb2 = LoadedKb {
        kb: d.kb2.clone(),
        external_ids: (0..d.kb2.num_entities()).map(|i| format!("b{i}")).collect(),
    };
    let dir = std::env::temp_dir().join(format!("remp-scale-eq-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let config = RempConfig::default().with_budget(80);
    write_campaign(&dir, tag, &kb1, &kb2, &d.gold, &config, &crowd, 11, &PlanMode::Full, 3)
        .unwrap();
    dir
}

/// Runs the campaign through the real binary with N worker processes.
fn run_with_workers(dir: &std::path::Path, workers: usize) -> MergedOutcome {
    let out = dir.join(format!("out{workers}.json"));
    let run = Command::new(env!("CARGO_BIN_EXE_rempctl"))
        .args(["scale-run", "--dir", &dir.display().to_string()])
        .args(["--workers", &workers.to_string()])
        .args(["--out", &out.display().to_string()])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "scale-run --workers {workers} failed:\n{}{}",
        String::from_utf8_lossy(&run.stdout),
        String::from_utf8_lossy(&run.stderr)
    );
    let doc = Json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
    MergedOutcome::from_json(&doc).unwrap()
}

/// 2 workers race over 3 shards; 4 workers oversubscribe them, so at
/// least one worker spends its life polling a fully-leased queue.
fn assert_preset_equivalence(tag: &str, preset: &str, scale: f64, crowd: CrowdSpec) {
    let dir = campaign_dir(tag, preset, scale, crowd);
    let reference = run_sharded_local(&dir).unwrap();
    assert!(reference.shards >= 2, "want a genuinely sharded campaign");
    for workers in [2, 4] {
        let merged = run_with_workers(&dir, workers);
        assert_eq!(
            merged, reference,
            "{preset}: {workers}-process outcome diverges from single-process"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn simulated() -> CrowdSpec {
    CrowdSpec::Simulated { workers: 30, min_quality: 0.85, max_quality: 0.99, per_question: 3 }
}

#[test]
fn tiny_sharded_matches_single_process() {
    assert_preset_equivalence("tiny", "TINY", 1.0, simulated());
}

#[test]
fn iimb_sharded_matches_single_process() {
    assert_preset_equivalence("iimb", "IIMB", 0.5, simulated());
}

#[test]
fn dblp_acm_sharded_matches_single_process() {
    assert_preset_equivalence("da", "D-A", 0.15, CrowdSpec::Oracle);
}

#[test]
fn imdb_yago_sharded_matches_single_process() {
    assert_preset_equivalence("iy", "I-Y", 0.1, CrowdSpec::Oracle);
}

#[test]
fn dbpedia_yago_sharded_matches_single_process() {
    assert_preset_equivalence("dy", "D-Y", 0.1, CrowdSpec::Oracle);
}
