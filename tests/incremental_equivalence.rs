//! The incremental loop engine must be invisible in the results: for
//! every dataset preset, a campaign run on the delta-driven,
//! component-sharded stage-2 path produces *bit-identical* question
//! order, outcomes, metrics and checkpoint JSON to a campaign that
//! rebuilds the world from scratch every loop — under both sequential
//! and pooled execution. `REMP_CHECK_INCREMENTAL=1` (or
//! `set_check_incremental`) additionally asserts the internal stage-2
//! artifacts against the from-scratch reference every single loop.

mod common;

use remp::core::{evaluate_matches, Remp, RempConfig, RempOutcome};
use remp::crowd::{LabelSource, OracleCrowd, SimulatedCrowd};
use remp::datasets::{generate, preset_by_name, GeneratedDataset};
use remp::kb::EntityId;
use remp::par::Parallelism;

/// Every preset at a laptop-friendly scale, as in
/// `tests/parallel_equivalence.rs` — each stresses a different KB shape.
fn presets() -> Vec<GeneratedDataset> {
    [("IIMB", 0.25), ("D-A", 0.2), ("I-Y", 0.15), ("D-Y", 0.15), ("TINY", 1.0)]
        .into_iter()
        .map(|(name, scale)| generate(&preset_by_name(name, scale).expect("known preset")))
        .collect()
}

/// Everything observable about one campaign: the question transcript, a
/// checkpoint taken after the first completed batch, and the outcome.
struct CampaignTrace {
    transcript: Vec<(usize, EntityId, EntityId)>,
    mid_checkpoint: Option<String>,
    outcome: RempOutcome,
    full_rebuild_loops: usize,
    propagation_passes: usize,
}

fn run_campaign(
    dataset: &GeneratedDataset,
    parallelism: Parallelism,
    incremental: bool,
    check_every_loop: bool,
    crowd: &mut dyn LabelSource,
) -> CampaignTrace {
    let config = RempConfig::default().with_parallelism(parallelism);
    let remp = Remp::new(config);
    let mut session = remp.begin(&dataset.kb1, &dataset.kb2).expect("valid config");
    session.set_incremental(incremental);
    session.set_check_incremental(check_every_loop);
    let mut transcript = Vec::new();
    let mut mid_checkpoint = None;
    while let Some(batch) = session.next_batch().expect("no protocol errors") {
        for q in &batch.questions {
            transcript.push((batch.loop_index, q.pair.0, q.pair.1));
            let labels = crowd.label(dataset.is_match(q.pair.0, q.pair.1));
            session.submit(q.id, labels).expect("fresh question");
        }
        if mid_checkpoint.is_none() {
            // Same point in both modes: right after the first batch was
            // folded into the seeds.
            mid_checkpoint = Some(session.checkpoint().to_json_string());
        }
    }
    let stats = session.loop_stats();
    let full_rebuild_loops = stats.iter().filter(|s| s.refresh.full_rebuild).count();
    let propagation_passes = stats.len();
    CampaignTrace {
        transcript,
        mid_checkpoint,
        outcome: session.finish(),
        full_rebuild_loops,
        propagation_passes,
    }
}

#[test]
fn incremental_equals_from_scratch_on_every_preset() {
    for dataset in presets() {
        for parallelism in [Parallelism::Sequential, Parallelism::Fixed(4)] {
            let mut crowd = OracleCrowd::new();
            let incremental = run_campaign(&dataset, parallelism, true, false, &mut crowd);
            let mut crowd = OracleCrowd::new();
            let full = run_campaign(&dataset, parallelism, false, false, &mut crowd);

            // Identical question order…
            assert_eq!(
                incremental.transcript, full.transcript,
                "{} ({parallelism:?}): question order diverged",
                dataset.name
            );
            // …identical outcome (matches, resolutions, #Q, #L)…
            assert_eq!(
                incremental.outcome, full.outcome,
                "{} ({parallelism:?}): outcomes diverged",
                dataset.name
            );
            // …identical metrics, bit for bit…
            let eval_inc =
                evaluate_matches(incremental.outcome.matches.iter().copied(), &dataset.gold);
            let eval_full = evaluate_matches(full.outcome.matches.iter().copied(), &dataset.gold);
            assert_eq!(eval_inc, eval_full, "{}: metrics diverged", dataset.name);
            // …and identical checkpoint JSON at the same mid-campaign
            // point (priors, seeds, resolutions — the whole dynamic
            // state serializes to the same bytes).
            assert_eq!(
                incremental.mid_checkpoint, full.mid_checkpoint,
                "{} ({parallelism:?}): checkpoint JSON diverged",
                dataset.name
            );
            // The incremental engine must actually be incremental: one
            // full rebuild (the first pass), deltas afterwards.
            if incremental.propagation_passes > 1 {
                assert_eq!(
                    incremental.full_rebuild_loops, 1,
                    "{}: only the first pass may rebuild from scratch",
                    dataset.name
                );
            }
            assert_eq!(
                full.full_rebuild_loops, full.propagation_passes,
                "{}: the baseline must rebuild every pass",
                dataset.name
            );
        }
    }
}

#[test]
fn incremental_state_matches_reference_every_loop() {
    // The strongest form of the guarantee, on the two smallest presets:
    // after every single refresh the incremental ConsistencyTable,
    // ProbErGraph and InferredSets are bit-compared against a
    // from-scratch rebuild (LoopState::check_reference panics on the
    // first divergence). A noisy crowd exercises the Inconsistent-verdict
    // prior downdates too.
    for (name, scale) in [("TINY", 1.0), ("IIMB", 0.2)] {
        let dataset = generate(&preset_by_name(name, scale).expect("known preset"));
        let mut crowd = SimulatedCrowd::paper_default(20260728);
        let trace = run_campaign(&dataset, Parallelism::Fixed(2), true, true, &mut crowd);
        assert!(!trace.transcript.is_empty(), "{name}: campaign must ask questions");
    }
}

#[test]
fn checkpoints_cross_between_modes() {
    // A checkpoint written by an incremental session resumes into a
    // from-scratch session (and vice versa) with identical results —
    // the engine is pure execution strategy, invisible to the format.
    let dataset = generate(&preset_by_name("IIMB", 0.2).expect("known preset"));
    let mut crowd = OracleCrowd::new();
    let reference = run_campaign(&dataset, Parallelism::Sequential, true, false, &mut crowd);
    let checkpoint_json = reference.mid_checkpoint.clone().expect("at least one batch");

    let checkpoint = remp::core::SessionCheckpoint::from_json_str(&checkpoint_json).unwrap();
    let mut resumed =
        remp::core::RempSession::resume(&dataset.kb1, &dataset.kb2, checkpoint).unwrap();
    resumed.set_incremental(false);
    let mut crowd = OracleCrowd::new();
    // Skip the questions the original session already consumed before
    // the checkpoint: replay the crowd to the same RNG-free state (the
    // oracle is stateless, so nothing to fast-forward).
    while let Some(batch) = resumed.next_batch().expect("no protocol errors") {
        for q in &batch.questions {
            let labels = crowd.label(dataset.is_match(q.pair.0, q.pair.1));
            resumed.submit(q.id, labels).expect("fresh question");
        }
    }
    let resumed_outcome = resumed.finish();
    assert_eq!(resumed_outcome, reference.outcome, "cross-mode resume diverged");
}

/// The engine choice is pinned against the pre-refactor outputs too:
/// both the incremental and the from-scratch engine must reproduce the
/// digests captured on the `HashMap`/`BTreeMap` layout immediately
/// before the dense-id refactor — one constant per preset × parallelism,
/// shared with `tests/parallel_equivalence.rs` because the engines are
/// output-invisible.
#[test]
fn engine_outputs_pinned_to_pre_refactor_digests() {
    const PINS: &[(&str, u64, u64)] = &[
        ("IIMB", 0x5316831745f33ea7, 0x77a3aaaed24dddf4),
        ("D-A", 0xffe5d6ace05434ee, 0x3bac9e7bba40034d),
        ("I-Y", 0x1167d6036912695e, 0x4dba2ca2c2cf519b),
        ("D-Y", 0x5454eb6d20c20388, 0x3cd123696442d315),
        ("tiny", 0xa3e4e40e13ab6874, 0x18fa44f4b0c47371),
    ];
    for (dataset, &(name, seq_pin, par_pin)) in common::presets().iter().zip(PINS) {
        assert_eq!(dataset.name, name, "preset order drifted under the pins");
        for incremental in [true, false] {
            let seq = common::observe_campaign(dataset, Parallelism::Sequential, Some(incremental));
            assert_eq!(
                common::campaign_digest(dataset, &seq),
                seq_pin,
                "{name}: sequential {} engine diverged from the pre-refactor outputs",
                if incremental { "incremental" } else { "from-scratch" }
            );
            let par = common::observe_campaign(dataset, Parallelism::Fixed(4), Some(incremental));
            assert_eq!(
                common::campaign_digest(dataset, &par),
                par_pin,
                "{name}: Fixed(4) {} engine diverged from the pre-refactor outputs",
                if incremental { "incremental" } else { "from-scratch" }
            );
        }
    }
}
