//! Parallel execution must be invisible in the results: for every dataset
//! preset, a campaign run on the worker pool produces *bit-identical*
//! matches, metrics, resolutions and question order to the sequential
//! reference, and a seeded `SimulatedCrowd` produces the exact same
//! question-answer transcript regardless of thread count.

mod common;

use remp::core::{evaluate_matches, Remp, RempConfig, RempOutcome};
use remp::crowd::{LabelSource, OracleCrowd, SimulatedCrowd};
use remp::datasets::{generate, preset_by_name, GeneratedDataset};
use remp::kb::EntityId;
use remp::par::Parallelism;

/// Every preset at a laptop-friendly scale — "every preset" is the point:
/// each one stresses a different KB shape (homogeneous, heterogeneous,
/// cross-type relationships).
fn presets() -> Vec<GeneratedDataset> {
    [("IIMB", 0.25), ("D-A", 0.2), ("I-Y", 0.15), ("D-Y", 0.15), ("TINY", 1.0)]
        .into_iter()
        .map(|(name, scale)| generate(&preset_by_name(name, scale).expect("known preset")))
        .collect()
}

/// One campaign's full observable behaviour: the question order (pair by
/// pair, in the order posted) plus the final outcome.
fn run_campaign(
    dataset: &GeneratedDataset,
    config: &RempConfig,
    crowd: &mut dyn LabelSource,
) -> (Vec<(usize, EntityId, EntityId)>, RempOutcome) {
    let remp = Remp::new(config.clone());
    let mut session = remp.begin(&dataset.kb1, &dataset.kb2).expect("valid config");
    let mut transcript = Vec::new();
    while let Some(batch) = session.next_batch().expect("no protocol errors") {
        for q in &batch.questions {
            transcript.push((batch.loop_index, q.pair.0, q.pair.1));
            let labels = crowd.label(dataset.is_match(q.pair.0, q.pair.1));
            session.submit(q.id, labels).expect("fresh question");
        }
    }
    (transcript, session.finish())
}

#[test]
fn parallel_equals_sequential_on_every_preset() {
    for dataset in presets() {
        let sequential_config = RempConfig::default().with_parallelism(Parallelism::Sequential);
        let parallel_config = RempConfig::default().with_parallelism(Parallelism::Fixed(4));

        let mut crowd = OracleCrowd::new();
        let (seq_questions, seq_outcome) = run_campaign(&dataset, &sequential_config, &mut crowd);
        let mut crowd = OracleCrowd::new();
        let (par_questions, par_outcome) = run_campaign(&dataset, &parallel_config, &mut crowd);

        // Identical question order…
        assert_eq!(seq_questions, par_questions, "{}: question order diverged", dataset.name);
        // …identical matches and resolutions (RempOutcome is PartialEq
        // over matches, resolutions, counts)…
        assert_eq!(seq_outcome, par_outcome, "{}: outcomes diverged", dataset.name);
        // …and identical metrics, bit for bit.
        let seq_eval = evaluate_matches(seq_outcome.matches.iter().copied(), &dataset.gold);
        let par_eval = evaluate_matches(par_outcome.matches.iter().copied(), &dataset.gold);
        assert_eq!(seq_eval, par_eval, "{}: metrics diverged", dataset.name);
    }
}

#[test]
fn prepare_is_thread_count_invariant() {
    // Stage 1 alone, compared field by field across three policies.
    let dataset = generate(&preset_by_name("IIMB", 0.3).expect("known preset"));
    let baseline = remp::core::prepare(
        &dataset.kb1,
        &dataset.kb2,
        &RempConfig::default().with_parallelism(Parallelism::Sequential),
    );
    for threads in [2, 4, 7] {
        let config = RempConfig::default().with_parallelism(Parallelism::Fixed(threads));
        let prep = remp::core::prepare(&dataset.kb1, &dataset.kb2, &config);
        assert_eq!(prep.candidate_count, baseline.candidate_count, "{threads} threads");
        assert_eq!(prep.sim_vectors, baseline.sim_vectors, "{threads} threads");
        assert_eq!(prep.initial, baseline.initial, "{threads} threads");
        assert_eq!(
            prep.candidates.ids().map(|p| prep.candidates.pair(p)).collect::<Vec<_>>(),
            baseline.candidates.ids().map(|p| baseline.candidates.pair(p)).collect::<Vec<_>>(),
            "{threads} threads"
        );
        assert_eq!(prep.graph.num_edges(), baseline.graph.num_edges(), "{threads} threads");
    }
}

/// The satellite regression test for the session RNG: a *seeded*
/// `SimulatedCrowd` (stateful RNG, advanced once per question) must see
/// the exact same question sequence under `Sequential` and `Fixed(4)`
/// parallelism, and therefore produce the identical label transcript and
/// final outcome. If parallel code ever reordered or duplicated RNG
/// draws, the transcripts would diverge.
#[test]
fn seeded_crowd_transcript_is_identical_across_thread_counts() {
    let dataset = generate(&preset_by_name("IIMB", 0.25).expect("known preset"));

    /// One answered question: `(loop, pair, labels as (quality, vote))`.
    type TranscriptEntry = (usize, (u32, u32), Vec<(f64, bool)>);

    let transcript_under = |parallelism: Parallelism| {
        let config = RempConfig::default().with_parallelism(parallelism);
        let remp = Remp::new(config);
        let mut crowd = SimulatedCrowd::paper_default(20260728);
        let mut session = remp.begin(&dataset.kb1, &dataset.kb2).expect("valid config");
        let mut transcript: Vec<TranscriptEntry> = Vec::new();
        while let Some(batch) = session.next_batch().expect("no protocol errors") {
            for q in &batch.questions {
                let labels = crowd.label(dataset.is_match(q.pair.0, q.pair.1));
                transcript.push((
                    batch.loop_index,
                    (q.pair.0 .0, q.pair.1 .0),
                    labels.iter().map(|l| (l.worker_quality, l.says_match)).collect(),
                ));
                session.submit(q.id, labels).expect("fresh question");
            }
        }
        (transcript, session.finish(), crowd.questions_asked(), crowd.labels_collected())
    };

    let sequential = transcript_under(Parallelism::Sequential);
    let parallel = transcript_under(Parallelism::Fixed(4));
    assert_eq!(sequential.0, parallel.0, "label transcript diverged");
    assert_eq!(sequential.1, parallel.1, "outcome diverged");
    assert_eq!(sequential.2, parallel.2, "question count diverged");
    assert_eq!(sequential.3, parallel.3, "label count diverged");
    assert!(!sequential.0.is_empty(), "campaign must ask questions for the pin to mean anything");
}

/// Campaign outputs pinned across *code changes*, not just across thread
/// counts: these digests were captured on the `HashMap`/`BTreeMap`
/// layout immediately before the dense-id refactor (packed pair keys,
/// CSR adjacency, `IdHasher`). Every preset must keep producing the
/// exact same question order, outcome, metrics and checkpoint JSON —
/// the sequential and pooled constants differ only because the
/// checkpoint embeds the parallelism config.
#[test]
fn outputs_pinned_to_pre_refactor_digests() {
    const PINS: &[(&str, u64, u64)] = &[
        ("IIMB", 0x5316831745f33ea7, 0x77a3aaaed24dddf4),
        ("D-A", 0xffe5d6ace05434ee, 0x3bac9e7bba40034d),
        ("I-Y", 0x1167d6036912695e, 0x4dba2ca2c2cf519b),
        ("D-Y", 0x5454eb6d20c20388, 0x3cd123696442d315),
        ("tiny", 0xa3e4e40e13ab6874, 0x18fa44f4b0c47371),
    ];
    for (dataset, &(name, seq_pin, par_pin)) in common::presets().iter().zip(PINS) {
        assert_eq!(dataset.name, name, "preset order drifted under the pins");
        let seq = common::observe_campaign(dataset, Parallelism::Sequential, None);
        assert_eq!(
            common::campaign_digest(dataset, &seq),
            seq_pin,
            "{name}: sequential campaign diverged from the pre-refactor outputs"
        );
        let par = common::observe_campaign(dataset, Parallelism::Fixed(4), None);
        assert_eq!(
            common::campaign_digest(dataset, &par),
            par_pin,
            "{name}: Fixed(4) campaign diverged from the pre-refactor outputs"
        );
    }
}
