//! Property-based integration tests: the full pipeline on randomly
//! generated small worlds never panics, respects budgets, and emits valid,
//! deduplicated matches.

use proptest::prelude::*;

use remp::core::{Remp, RempConfig};
use remp::crowd::{FixedErrorCrowd, OracleCrowd};
use remp::datasets::{generate, AttrSpec, DatasetSpec, RelSpec, TypeSpec};

/// A small random two-type world.
fn arb_spec() -> impl Strategy<Value = DatasetSpec> {
    (
        10usize..40,  // persons
        5usize..15,   // places
        0.0f64..0.3,  // label noise
        0.0f64..0.4,  // isolated fraction
        0.3f64..1.0,  // kb2 keep
        any::<u64>(), // seed
    )
        .prop_map(|(n_person, n_place, noise, iso, keep2, seed)| {
            let mut person = TypeSpec::new("person", n_person);
            person.attrs =
                vec![AttrSpec::name("name", "label"), AttrSpec::year("born", "birthDate")];
            person.rels = vec![RelSpec::new("bornIn", "birthPlace", 1, (1, 1))];
            person.isolated_frac = iso;
            person.kb2_keep = keep2;
            let mut place = TypeSpec::new("place", n_place);
            place.attrs = vec![AttrSpec::name("pname", "plabel")];
            DatasetSpec {
                name: "prop".into(),
                seed,
                types: vec![person, place],
                label_noise1: noise,
                label_noise2: noise,
                missing_label1: 0.0,
                missing_label2: 0.05,
                closure: 0.5,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The pipeline completes on arbitrary worlds and produces valid,
    /// unique matches within budget.
    #[test]
    fn pipeline_is_total_and_well_formed(spec in arb_spec(), budget in 1usize..20) {
        let d = generate(&spec);
        let remp = Remp::new(RempConfig::default().with_budget(budget));
        let mut crowd = OracleCrowd::new();
        let out = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);

        prop_assert!(out.questions_asked <= budget);
        let mut seen = std::collections::HashSet::new();
        for &(u1, u2) in &out.matches {
            prop_assert!(u1.index() < d.kb1.num_entities());
            prop_assert!(u2.index() < d.kb2.num_entities());
            prop_assert!(seen.insert((u1, u2)), "duplicate match emitted");
        }
        prop_assert!(out.retained_count <= out.candidate_count);
    }

    /// Noisy crowds never crash truth inference and results stay sane.
    #[test]
    fn pipeline_handles_noisy_crowds(spec in arb_spec(), error in 0.0f64..0.4) {
        let d = generate(&spec);
        let remp = Remp::new(RempConfig::default().with_budget(15));
        let mut crowd = FixedErrorCrowd::new(error.min(0.45), 5, spec.seed);
        let out = remp.run(&d.kb1, &d.kb2, &|a, b| d.is_match(a, b), &mut crowd);
        prop_assert!(out.loops <= 1000);
        prop_assert_eq!(out.questions_asked, crowd_questions(&crowd));
    }
}

fn crowd_questions(crowd: &FixedErrorCrowd) -> usize {
    use remp::crowd::LabelSource;
    crowd.questions_asked()
}
