//! remp-sim acceptance tests: reference equivalence, bit-identical
//! replay, and adversarial-preset behavior.

use remp::core::RempConfig;
use remp::datasets::{generate, tiny};
use remp::par::Parallelism;
use remp::serve::sim::{reference_outcome, CrowdParams};
use remp::serve::wire::verdict_code;
use remp::sim::{preset, preset_names, run_scenario, run_scenario_with, EventKind};

/// The `honest` preset is WireCrowd on virtual time: same worker pool,
/// same RNG stream, same outcome — the simulator inherits the serve
/// crate's equivalence proof rather than forking it.
#[test]
fn honest_preset_matches_the_reference_outcome() {
    let seed = 42;
    let scenario = preset("honest", seed).unwrap();
    let report = run_scenario(&scenario).expect("honest preset runs");
    assert!(report.complete, "an always-on honest crowd finishes the campaign");
    assert!(!report.stalled);
    assert_eq!(report.answers_rejected, 0, "instant answers never miss a lease");
    assert_eq!(
        report.leases,
        remp::serve::LeaseStats { issued: report.answers_delivered, expired: 0, reissued: 0 }
    );

    let d = generate(&tiny(scenario.scale));
    let (outcome, log) = reference_outcome(
        &d.kb1,
        &d.kb2,
        &RempConfig::default(),
        &scenario.policy(),
        &CrowdParams::paper_default(seed),
        &|a, b| d.is_match(a, b),
    )
    .expect("reference runs");

    assert_eq!(report.outcome, outcome, "same matches, resolutions and counters");

    // The trace's submissions replay the reference log question for
    // question, verdict for verdict.
    let submits: Vec<(u64, String)> = report
        .trace
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Submit { question, verdict, .. } => Some((*question, verdict.clone())),
            _ => None,
        })
        .collect();
    let reference: Vec<(u64, String)> =
        log.iter().map(|r| (r.question, verdict_code(r.verdict).to_owned())).collect();
    assert_eq!(submits, reference);
}

/// Same seed + same scenario ⇒ the same report, bit for bit — across
/// repeated runs and across pipeline thread counts.
#[test]
fn replay_is_bit_identical_across_runs_and_parallelism() {
    for name in ["honest", "spam-flood", "churn-storm"] {
        let scenario = preset(name, 7).unwrap();
        let a = run_scenario(&scenario).unwrap();
        let b = run_scenario(&scenario).unwrap();
        assert_eq!(a, b, "{name}: repeat runs must be identical");
        assert_eq!(a.trace_hash, b.trace_hash);

        let seq = run_scenario_with(&scenario, Some(Parallelism::Sequential)).unwrap();
        let par = run_scenario_with(&scenario, Some(Parallelism::Fixed(4))).unwrap();
        assert_eq!(seq, par, "{name}: the trace must not depend on thread count");

        let other = preset(name, 8).unwrap();
        let c = run_scenario(&other).unwrap();
        assert_ne!(a.trace_hash, c.trace_hash, "{name}: the seed must matter");
    }
}

/// Every preset runs to a decision on virtual time — no sleeps, no
/// wall-clock — and the adversarial ones exercise what they claim to.
#[test]
fn presets_run_and_adversaries_leave_their_mark() {
    for name in preset_names() {
        let scenario = preset(name, 3).unwrap();
        let report = run_scenario(&scenario).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.complete, "{name}: campaign must finish (got {} ticks)", report.ticks);
        assert!(report.questions_asked > 0, "{name}");
        assert_eq!(
            report.questions_asked, report.outcome.questions_asked,
            "{name}: report and outcome agree"
        );
        assert!(report.eval.f1 > 0.5, "{name}: f1 {} collapsed", report.eval.f1);
    }

    // Churn makes workers walk out on live leases: some expire, and the
    // engine re-issues those question slots to the relief shift.
    let churn = run_scenario(&preset("churn-storm", 3).unwrap()).unwrap();
    assert!(churn.workers_left > 0);
    assert!(churn.answers_dropped > 0, "leavers drop in-flight answers");
    assert!(churn.leases.expired > 0, "abandoned leases expire");
    assert!(churn.leases.reissued > 0, "expired slots are re-leased");
    assert!(churn.leases.issued > churn.answers_delivered);

    // Colluders answer consistently wrong, so scoring pushes the whole
    // clique below the qualification floor while the honest crowd stays
    // clearly above it.
    let scenario = preset("colluders", 3).unwrap();
    let colluders = run_scenario(&scenario).unwrap();
    let mean = |behavior: &str| {
        let est: Vec<f64> = colluders
            .workers
            .iter()
            .filter(|w| w.behavior == behavior && w.scored > 0)
            .map(|w| w.estimate)
            .collect();
        assert!(!est.is_empty(), "no scored {behavior} workers");
        est.iter().sum::<f64>() / est.len() as f64
    };
    let clique_max = colluders.estimator.adversary_max_estimate.expect("clique was scored");
    assert!(
        clique_max < scenario.qualification,
        "every colluder ({clique_max}) must sink below the qualification floor"
    );
    assert!(mean("colluder") < mean("honest"));

    // Drift decays true qualities over the run; the report records the
    // drifted value, not the draw.
    let drift = run_scenario(&preset("drift", 3).unwrap()).unwrap();
    assert!(
        drift.workers.iter().all(|w| w.true_quality.unwrap() < 0.9),
        "qualities must have decayed below the initial draw range"
    );
}

/// A scenario file round-trips through the parser and runs just like
/// the in-memory scenario it encodes.
#[test]
fn scenario_files_drive_runs() {
    let scenario = preset("spam-flood", 11).unwrap();
    let text = scenario.to_json().to_pretty_string();
    let parsed = remp::sim::Scenario::parse(&text).unwrap();
    assert_eq!(parsed, scenario);
    assert_eq!(
        run_scenario(&parsed).unwrap().trace_hash,
        run_scenario(&scenario).unwrap().trace_hash,
    );
}
