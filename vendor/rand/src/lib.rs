//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements exactly the rand 0.8 API surface the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, so *streams differ from upstream rand*,
//! but everything in this workspace only relies on determinism for a fixed
//! seed and on uniformity, never on specific stream values.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source implemented by generators.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// A type samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range samplable by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f64, f32);

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }

    /// One draw from the standard distribution of `T`.
    #[allow(clippy::disallowed_names)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn standard_f64_is_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
