//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — measuring plain wall-clock medians with
//! `std::time::Instant` instead of criterion's statistical machinery.
//!
//! When invoked by `cargo test` (criterion harnesses receive `--test`),
//! each benchmark body runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimiser from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver (subset of `criterion::Criterion`).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_test = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 20, smoke_test }
    }
}

impl Criterion {
    /// Builder-style default sample size (the `criterion_group!` config
    /// form uses this: `Criterion::default().sample_size(10)`).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup { parent: self, sample_size: self.sample_size }
    }

    /// Times one stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        let mut group = BenchmarkGroup { parent: self, sample_size };
        group.bench_function(id, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Times one benchmark body.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let samples = if self.parent.smoke_test { 1 } else { self.sample_size };
        let mut bencher = Bencher { samples, timings: Vec::with_capacity(samples) };
        f(&mut bencher);
        let mut timings = bencher.timings;
        timings.sort_unstable();
        let median = timings.get(timings.len() / 2).copied().unwrap_or_default();
        let (lo, hi) = (
            timings.first().copied().unwrap_or_default(),
            timings.last().copied().unwrap_or_default(),
        );
        println!("{id:<24} median {median:>12?}   [{lo:?} .. {hi:?}]   ({samples} samples)");
        self
    }

    /// Ends the group (upstream flushes reports here; we only print).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark bodies.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Runs `body` once per sample, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One untimed warm-up to populate caches and lazy statics.
        black_box(body());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(body());
            self.timings.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into one callable group. Supports both
/// the positional form and the `name = ...; config = ...; targets = ...`
/// form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion { sample_size: 3, smoke_test: false };
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3).bench_function("count", |b| {
                b.iter(|| {
                    runs += 1;
                    black_box(runs)
                })
            });
            group.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
