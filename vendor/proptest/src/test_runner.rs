//! Case RNG and failure plumbing.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Why a property case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped silently.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// Deterministic per-case random source.
///
/// Seeded from the test's module path, name and case index, so failures
/// reproduce exactly across runs (print the case index from the panic
/// message and re-run).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRng {
    /// RNG for one `(test, case)` combination.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let seed =
            fnv1a(test_name.as_bytes()) ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        TestRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[lo, hi)` (integer index helper).
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}
