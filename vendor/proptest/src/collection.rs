//! Collection strategies (subset of `proptest::collection`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Acceptable length specifications for [`vec()`].
pub trait IntoLenRange {
    /// Resolves to `[lo, hi)` bounds.
    fn bounds(self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl IntoLenRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec length range");
        (self.start, self.end)
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `len`.
pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S> {
    let (lo, hi) = len.bounds();
    VecStrategy { element, lo, hi }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.index(self.lo, self.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
