//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values (subset of `proptest::Strategy`;
/// no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it induces.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

/// String literals act as regex-like pattern strategies, as in proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}
