//! Regex-like string generation.
//!
//! Proptest treats string literals as regexes and generates matching
//! strings. This stand-in supports the subset the workspace's tests use:
//! literal characters, `.` (printable ASCII), character classes
//! `[a-z0-9 ]`, groups `( ... )`, and counted repetition `{n}` / `{n,m}`
//! applied to the preceding atom.

use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    Literal(char),
    /// Inclusive character alternatives, expanded from a class.
    Class(Vec<char>),
    /// Any printable ASCII character (`.`).
    Dot,
    Group(Vec<(Atom, (usize, usize))>),
}

/// Expands the inside of `[...]` into explicit alternatives.
fn parse_class_str(src: &str) -> Vec<char> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "bad class range {lo}-{hi}");
            for c in lo..=hi {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (lo, hi) = match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                None => {
                    let n = spec.trim().parse().unwrap();
                    (n, n)
                }
            };
            assert!(lo <= hi, "bad repetition {{{spec}}}");
            return (lo, hi);
        }
        spec.push(c);
    }
    panic!("unterminated repetition");
}

fn parse_seq(pattern: &str) -> Vec<(Atom, (usize, usize))> {
    let mut out = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut inner = String::new();
                for cc in chars.by_ref() {
                    if cc == ']' {
                        break;
                    }
                    inner.push(cc);
                }
                Atom::Class(parse_class_str(&inner))
            }
            '(' => {
                let mut depth = 1;
                let mut inner = String::new();
                for cc in chars.by_ref() {
                    match cc {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if depth > 0 {
                        inner.push(cc);
                    }
                }
                assert_eq!(depth, 0, "unterminated group");
                Atom::Group(parse_seq(&inner))
            }
            '.' => Atom::Dot,
            '\\' => Atom::Literal(chars.next().expect("dangling escape")),
            other => Atom::Literal(other),
        };
        let reps = parse_repeat(&mut chars);
        out.push((atom, reps));
    }
    out
}

fn emit(seq: &[(Atom, (usize, usize))], rng: &mut TestRng, out: &mut String) {
    for (atom, &(lo, hi)) in seq.iter().map(|(a, r)| (a, r)) {
        let n = if lo == hi { lo } else { rng.index(lo, hi + 1) };
        for _ in 0..n {
            match atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(alts) => out.push(alts[rng.index(0, alts.len())]),
                Atom::Dot => out.push(char::from(rng.index(0x20, 0x7f) as u8)),
                Atom::Group(inner) => emit(inner, rng, out),
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let seq = parse_seq(pattern);
    let mut out = String::new();
    emit(&seq, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string_tests", 1)
    }

    #[test]
    fn classes_ranges_and_counts() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-d ]{0,12}", &mut r);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c == ' ' || ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn groups_compose() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-d]{1,8}( [a-d]{1,8}){0,3}", &mut r);
            assert!(!s.is_empty());
            for word in s.split(' ') {
                assert!((1..=8).contains(&word.len()), "{s:?}");
            }
        }
    }

    #[test]
    fn dot_is_printable_ascii() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern(".{0,10}", &mut r);
            assert!(s.len() <= 10);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn exact_count_literal() {
        let mut r = rng();
        assert_eq!(generate_from_pattern("ab{3}c", &mut r), "abbbc");
    }
}
