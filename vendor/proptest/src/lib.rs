//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! re-implements the subset of proptest the workspace's property tests
//! rely on:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`] /
//!   [`Strategy::prop_flat_map`], implemented for numeric ranges, tuples,
//!   regex-like string patterns and [`collection::vec`];
//! * [`any`] / [`Arbitrary`] for primitives and `bool::ANY`;
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `prop_assert!`, `prop_assert_eq!` and `prop_assume!`.
//!
//! Differences from upstream: cases are drawn uniformly at random (no
//! size ramp-up, no edge-case bias) and **failing inputs are not shrunk**
//! — the panic message prints the seed-deterministic case index instead.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{TestCaseError, TestRng};

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (subset of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The `proptest::bool::ANY` strategy type.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Either boolean with equal probability.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Overrides the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                    let ($($pat,)*) = ($($crate::Strategy::generate(&($strat), &mut rng),)*);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed on case {case}: {msg}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` for property cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `assert_ne!` for property cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..=9), f in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_strings(v in crate::collection::vec(0i32..4, 2..6), s in "[a-c]{1,3}") {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn maps_and_assume(n in 1usize..20, flag in crate::bool::ANY) {
            prop_assume!(n != 13);
            let doubled = Just(n).prop_map(|x| x * 2).prop_flat_map(|x| Just(x + 1));
            let mut rng = TestRng::for_case("inner", 0);
            prop_assert_eq!(doubled.generate(&mut rng), n * 2 + 1);
            let _ = flag;
        }
    }

    use crate::TestRng;
}
