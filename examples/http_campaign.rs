//! A complete crowd campaign over HTTP, in one process: start the
//! `rempd` server on a free port, create a campaign through the wire
//! protocol, drive it with named simulated workers, and verify the
//! outcome is bit-identical to the same campaign run directly through
//! `RempSession` — no server anywhere.
//!
//! ```text
//! cargo run --example http_campaign
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use remp::core::{evaluate_matches, RempConfig};
use remp::datasets::{generate, tiny};
use remp::kb::EntityId;
use remp::serve::{
    drive, outcome_matches, reference_outcome, CrowdParams, CrowdPolicy, ServeClient, Server,
    ServerConfig, WireCrowd,
};
use remp_json::Json;

fn main() {
    // The client side: the TINY world's gold alignment is the hidden
    // truth our simulated workers answer from. The server regenerates
    // the same deterministic preset on its side.
    let dataset = generate(&tiny(1.0));
    let params = CrowdParams { per_question: 3, ..CrowdParams::paper_default(42) };

    // Boot rempd on a free port, on a background thread.
    let config = ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() };
    let server = Server::bind(&config).expect("bind");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let serving = std::thread::spawn(move || server.run(&stop_flag).expect("server"));
    println!("rempd listening on http://{addr}");

    // Create the campaign over the wire.
    let client = ServeClient::new(addr.to_string());
    let created = client
        .post(
            "/campaigns",
            &Json::Obj(vec![
                ("name".into(), Json::from("http-campaign-example")),
                ("preset".into(), Json::from("TINY")),
                ("per_question".into(), Json::from(params.per_question)),
            ]),
        )
        .expect("create campaign");
    let id = created.get("id").and_then(Json::as_str).expect("campaign id").to_owned();
    println!("created campaign {id}");

    // Drive it: each question is leased to three distinct named workers,
    // their answers aggregate server-side under online quality
    // estimation, and Eq. 17 + Eq. 11 run as each set completes.
    let mut crowd = WireCrowd::new(&params);
    let truth = |a: EntityId, b: EntityId| dataset.is_match(a, b);
    let driven = drive(&client, &id, &mut crowd, &truth).expect("drive to completion");
    let outcome = client.get(&format!("/campaigns/{id}/outcome")).expect("outcome");
    println!("campaign complete: {} questions answered over HTTP", driven.len());

    // Score it against the gold standard…
    let matches: Vec<(EntityId, EntityId)> = outcome
        .get("matches")
        .and_then(Json::as_array)
        .expect("matches")
        .iter()
        .map(|pair| {
            let get = |i: usize| {
                pair.as_array().unwrap()[i].as_u64().map(|n| EntityId(n as u32)).unwrap()
            };
            (get(0), get(1))
        })
        .collect();
    let eval = evaluate_matches(matches.iter().copied(), &dataset.gold);
    println!(
        "precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        100.0 * eval.precision,
        100.0 * eval.recall,
        100.0 * eval.f1
    );

    // …and prove the network changed nothing: the same seeded worker
    // stream through a raw RempSession gives the same bits.
    let policy = CrowdPolicy { per_question: params.per_question, ..CrowdPolicy::default() };
    let (reference, log) = reference_outcome(
        &dataset.kb1,
        &dataset.kb2,
        &RempConfig::default(),
        &policy,
        &params,
        &truth,
    )
    .expect("reference run");
    outcome_matches(&outcome, &reference, &log).expect("bit-identical to the in-process run");
    println!("verified: the HTTP campaign is bit-identical to the in-process session run");

    stop.store(true, Ordering::SeqCst);
    serving.join().expect("server thread");
}
