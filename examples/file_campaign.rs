//! File-backed campaign: the `rempctl` workflow (export → import →
//! run) driven from code, ending in a hand-driven session loop.
//!
//! ```sh
//! cargo run --release --example file_campaign
//! ```

use std::path::Path;

use remp::core::{evaluate_matches, Remp, RempConfig};
use remp::crowd::{LabelSource, SimulatedCrowd};
use remp::datasets::{generate, tiny};
use remp::ingest::{export_dataset, load_kb, write_snapshot, ExportFormat, FileDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("remp-file-campaign");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Put a dataset on disk — in production these files come from
    //    real KB dumps; here we export the TINY preset as N-Triples.
    let paths = export_dataset(&generate(&tiny(1.0)), &dir, ExportFormat::NTriples)?;
    println!("exported: {}", dir.display());

    // 2. `rempctl import`: parse the text once, snapshot as .rkb. Every
    //    later load skips the parser entirely.
    let snapshots = [dir.join("kb1.rkb"), dir.join("kb2.rkb")];
    for (text, snap) in [&paths.kb1, &paths.kb2].into_iter().zip(&snapshots) {
        let loaded = load_kb(text, &kb_name(text))?;
        write_snapshot(&loaded.kb, &loaded.external_ids, snap)?;
        println!("imported: {} → {}", text.display(), snap.display());
    }

    // 3. Load the campaign from the snapshots. Malformed input would be
    //    a typed error with file/line context, e.g.:
    let err = load_kb(Path::new("does-not-exist.nt"), "x").unwrap_err();
    println!("(error demo: {err})");

    let dataset = FileDataset::load("tiny", &snapshots[0], &snapshots[1], &paths.gold)?;
    println!(
        "loaded: {} / {} entities, {} gold matches",
        dataset.kb1.num_entities(),
        dataset.kb2.num_entities(),
        dataset.num_gold()
    );

    // 4. Drive the session loop exactly as with in-memory data — the
    //    gold standard plugs into the simulated crowd as hidden truth.
    let mut crowd = SimulatedCrowd::paper_default(42);
    let remp = Remp::new(RempConfig::default());
    let mut session = remp.begin(&dataset.kb1, &dataset.kb2)?;
    while let Some(batch) = session.next_batch()? {
        for question in &batch.questions {
            let (u1, u2) = question.pair;
            let labels = crowd.label(dataset.is_match(u1, u2));
            session.submit(question.id, labels)?;
        }
    }
    let outcome = session.finish();

    let eval = evaluate_matches(outcome.matches.iter().copied(), &dataset.gold);
    println!(
        "campaign: {} questions, {} loops → precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        outcome.questions_asked,
        outcome.loops,
        100.0 * eval.precision,
        100.0 * eval.recall,
        100.0 * eval.f1
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}

fn kb_name(path: &Path) -> String {
    format!("tiny-{}", path.file_stem().unwrap().to_string_lossy())
}
