//! Interrupt and resume a crowd campaign across *processes*.
//!
//! First run: opens a session, answers one batch, writes a JSON
//! checkpoint to a temp file and exits — as if the campaign host went
//! down overnight while HITs were still out.
//!
//! Second run: finds the checkpoint, resumes the session, drains it to
//! completion, and proves the outcome is identical to an uninterrupted
//! run on the same data.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume   # pass 1: checkpoint
//! cargo run --release --example checkpoint_resume   # pass 2: resume
//! ```

use std::path::PathBuf;

use remp::core::{Remp, RempConfig, RempSession, SessionCheckpoint};
use remp::crowd::{LabelSource, OracleCrowd};
use remp::datasets::{generate, iimb, GeneratedDataset};

fn checkpoint_path() -> PathBuf {
    std::env::temp_dir().join("remp-checkpoint-demo.json")
}

fn drain(session: &mut RempSession<'_>, d: &GeneratedDataset, crowd: &mut dyn LabelSource) {
    while let Some(batch) = session.next_batch().expect("resumed sessions drain cleanly") {
        for q in &batch.questions {
            let labels = crowd.label(d.is_match(q.pair.0, q.pair.1));
            session.submit(q.id, labels).expect("fresh question id");
        }
    }
}

fn main() {
    // Both processes regenerate the same world: the checkpoint stores
    // only the dynamic campaign state, stage 1 is deterministic.
    let dataset = generate(&iimb(0.5));
    let remp = Remp::new(RempConfig::default());
    let path = checkpoint_path();

    if !path.exists() {
        // ---- pass 1: start the campaign, then "crash" mid-way ----
        let mut session = remp.begin(&dataset.kb1, &dataset.kb2).expect("valid config");
        let mut crowd = OracleCrowd::new();
        if let Some(batch) = session.next_batch().expect("fresh session") {
            println!("loop 0: answering {} questions…", batch.questions.len());
            for q in &batch.questions {
                let labels = crowd.label(dataset.is_match(q.pair.0, q.pair.1));
                session.submit(q.id, labels).expect("fresh question id");
            }
        }
        // The pretty form costs a few bytes of whitespace and buys an
        // operator-inspectable file; it decodes identically.
        std::fs::write(&path, session.checkpoint().to_json_string_pretty())
            .expect("temp dir is writable");
        println!(
            "campaign interrupted after {} questions / {} loop(s);\ncheckpoint written to {}",
            session.questions_asked(),
            session.loops(),
            path.display()
        );
        println!("run this example again to resume.");
        return;
    }

    // ---- pass 2: resume from the checkpoint and finish ----
    let text = std::fs::read_to_string(&path).expect("checkpoint file readable");
    let checkpoint = SessionCheckpoint::from_json_str(&text).expect("well-formed checkpoint");
    let mut session =
        RempSession::resume(&dataset.kb1, &dataset.kb2, checkpoint).expect("matching KBs");
    println!(
        "resumed at {} questions / {} loop(s); continuing…",
        session.questions_asked(),
        session.loops()
    );
    let mut crowd = OracleCrowd::new();
    drain(&mut session, &dataset, &mut crowd);
    let resumed = session.finish();

    // Reference: the same campaign uninterrupted (oracle labels are
    // deterministic, so the comparison is exact).
    let mut crowd = OracleCrowd::new();
    let uninterrupted =
        remp.run(&dataset.kb1, &dataset.kb2, &|a, b| dataset.is_match(a, b), &mut crowd);

    println!(
        "resumed outcome:       {} matches, #Q {}, #L {}",
        resumed.matches.len(),
        resumed.questions_asked,
        resumed.loops
    );
    println!(
        "uninterrupted outcome: {} matches, #Q {}, #L {}",
        uninterrupted.matches.len(),
        uninterrupted.questions_asked,
        uninterrupted.loops
    );
    println!("identical: {}", resumed == uninterrupted);
    let _ = std::fs::remove_file(&path);
}
