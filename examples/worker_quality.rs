//! Error-tolerant truth inference in action: how worker quality and
//! redundancy interact (paper §VII-A).
//!
//! Sweeps crowd error rates and labels-per-question, showing the fraction
//! of questions the Eq. 17 posterior resolves correctly, incorrectly, or
//! flags as inconsistent ("hard").
//!
//! ```sh
//! cargo run --release --example worker_quality
//! ```

use remp::core::{Remp, RempConfig};
use remp::crowd::{
    infer_truth, FixedErrorCrowd, LabelSource, SimulatedCrowd, TruthConfig, Verdict,
};
use remp::datasets::{generate, iimb};

fn main() {
    let config = TruthConfig::default();
    println!(
        "truth thresholds: match ≥ {:.1}, non-match ≤ {:.1}\n",
        config.match_threshold, config.non_match_threshold
    );
    println!("error  labels |  correct  wrong  inconsistent");
    println!("--------------+------------------------------");

    for &error_rate in &[0.05, 0.15, 0.25] {
        for &per_question in &[1usize, 3, 5, 7] {
            let mut crowd = FixedErrorCrowd::new(error_rate, per_question, 7);
            let mut correct = 0usize;
            let mut wrong = 0usize;
            let mut inconsistent = 0usize;
            let n = 2000;
            for i in 0..n {
                let truth = i % 2 == 0;
                let labels = crowd.label(truth);
                let (verdict, _) = infer_truth(0.5, &labels, &config);
                match verdict {
                    Verdict::Match if truth => correct += 1,
                    Verdict::NonMatch if !truth => correct += 1,
                    Verdict::Inconsistent => inconsistent += 1,
                    _ => wrong += 1,
                }
            }
            println!(
                " {:>4.2}    {:>3}  |  {:>6.1}% {:>6.1}% {:>9.1}%",
                error_rate,
                per_question,
                100.0 * correct as f64 / n as f64,
                100.0 * wrong as f64 / n as f64,
                100.0 * inconsistent as f64 / n as f64,
            );
        }
        println!("--------------+------------------------------");
    }

    println!(
        "\nReading: with 5 labels/question (the paper's setting) even a 25%\n\
         error rate yields mostly-correct verdicts; singleton labels are\n\
         decisive but err at exactly the worker error rate."
    );

    // The same Eq. 17 machinery in situ: drive a session and tally the
    // verdicts coming back from `submit` — each receipt carries the
    // verdict and posterior the pipeline acted on.
    let dataset = generate(&iimb(0.4));
    let mut crowd = SimulatedCrowd::paper_default(7);
    let stats = crowd.quality_stats();
    println!(
        "\nlive session with {} workers (quality {:.2}–{:.2}, mean {:.2}, {} labels/question):",
        stats.workers, stats.min, stats.max, stats.mean, stats.per_question
    );
    let remp = Remp::new(RempConfig::default());
    let mut session = remp.begin(&dataset.kb1, &dataset.kb2).expect("default config is valid");
    let (mut matches, mut non_matches, mut hard) = (0usize, 0usize, 0usize);
    while let Some(batch) = session.next_batch().expect("fresh session") {
        for q in &batch.questions {
            let labels = crowd.label(dataset.is_match(q.pair.0, q.pair.1));
            let receipt = session.submit(q.id, labels).expect("fresh question id");
            match receipt.verdict {
                Verdict::Match => matches += 1,
                Verdict::NonMatch => non_matches += 1,
                Verdict::Inconsistent => hard += 1,
            }
        }
    }
    let outcome = session.finish();
    println!(
        "  {} questions → {} match, {} non-match, {} inconsistent (hard)",
        outcome.questions_asked, matches, non_matches, hard
    );
    println!(
        "  hard questions stay unresolved with a lowered prior — the loop\n\
         re-asks them only if their expected benefit climbs back up."
    );
}
