//! Quickstart: drive the Remp crowd loop yourself through the session
//! API on a small synthetic benchmark, then print quality/cost numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use remp::core::{evaluate_matches, MatchSource, Remp, RempConfig, RempError, Resolution};
use remp::crowd::{LabelSource, SimulatedCrowd};
use remp::datasets::{generate, iimb};

fn main() -> Result<(), RempError> {
    // 1. A two-KB world shaped like the paper's IIMB benchmark (365
    //    entities per KB at scale 1.0).
    let dataset = generate(&iimb(1.0));
    println!("KB1: {}", dataset.kb1.stats());
    println!("KB2: {}", dataset.kb2.stats());
    println!("gold matches: {}", dataset.num_gold());

    // 2. A crowd of 100 simulated workers with qualities in [0.8, 0.99];
    //    every question is answered by 5 of them (the paper's MTurk setup).
    let mut crowd = SimulatedCrowd::paper_default(42);
    println!("crowd: {:?}", crowd.quality_stats());

    // 3. Open a session: stage 1 (ER-graph construction) runs here. The
    //    caller owns the human-machine loop from now on — in production
    //    the questions would go to a real platform and the answers would
    //    come back asynchronously; `submit` accepts them in any order.
    let remp = Remp::new(RempConfig::default());
    let mut session = remp.begin(&dataset.kb1, &dataset.kb2)?;
    while let Some(batch) = session.next_batch()? {
        print!("loop {:>3}: {:>2} questions", batch.loop_index, batch.questions.len());
        let mut propagated = 0usize;
        for question in &batch.questions {
            // `question.context` carries the entity labels a crowd UI
            // would display; the simulation answers from hidden truth.
            let (u1, u2) = question.pair;
            let labels = crowd.label(dataset.is_match(u1, u2));
            let receipt = session.submit(question.id, labels)?;
            propagated += receipt.propagated.len();
        }
        println!(", {propagated:>3} matches propagated (Eq. 11)");
    }

    // 4. Close out: the isolated-pair classifier (§VII-B) mops up what
    //    propagation cannot reach.
    let outcome = session.finish();

    // 5. Report.
    let eval = evaluate_matches(outcome.matches.iter().copied(), &dataset.gold);
    let by_source = |src: MatchSource| {
        outcome.resolutions.iter().filter(|r| **r == Resolution::Match(src)).count()
    };
    println!();
    println!("candidate pairs : {}", outcome.candidate_count);
    println!("retained pairs  : {}", outcome.retained_count);
    println!("ER-graph edges  : {}", outcome.edge_count);
    println!();
    println!("questions asked : {} ({} labels)", outcome.questions_asked, crowd.labels_collected());
    println!("loops           : {}", outcome.loops);
    println!("crowd matches   : {}", by_source(MatchSource::Crowd));
    println!("inferred matches: {}", by_source(MatchSource::Inferred));
    println!("classifier      : {}", by_source(MatchSource::Classifier));
    println!();
    println!(
        "precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        100.0 * eval.precision,
        100.0 * eval.recall,
        100.0 * eval.f1
    );
    Ok(())
}
