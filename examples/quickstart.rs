//! Quickstart: run the full Remp pipeline on a small synthetic benchmark
//! with a simulated crowd and print quality/cost numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use remp::core::{evaluate_matches, MatchSource, Remp, RempConfig, Resolution};
use remp::crowd::{LabelSource, SimulatedCrowd};
use remp::datasets::{generate, iimb};

fn main() {
    // 1. A two-KB world shaped like the paper's IIMB benchmark (365
    //    entities per KB at scale 1.0).
    let dataset = generate(&iimb(1.0));
    println!("KB1: {}", dataset.kb1.stats());
    println!("KB2: {}", dataset.kb2.stats());
    println!("gold matches: {}", dataset.num_gold());

    // 2. A crowd of 100 simulated workers with qualities in [0.8, 0.99];
    //    every question is answered by 5 of them (the paper's MTurk setup).
    let mut crowd = SimulatedCrowd::paper_default(42);

    // 3. Run the four-stage loop: ER-graph construction → relational match
    //    propagation → multiple questions selection → truth inference.
    let remp = Remp::new(RempConfig::default());
    let outcome =
        remp.run(&dataset.kb1, &dataset.kb2, &|u1, u2| dataset.is_match(u1, u2), &mut crowd);

    // 4. Report.
    let eval = evaluate_matches(outcome.matches.iter().copied(), &dataset.gold);
    let by_source = |src: MatchSource| {
        outcome.resolutions.iter().filter(|r| **r == Resolution::Match(src)).count()
    };
    println!();
    println!("candidate pairs : {}", outcome.candidate_count);
    println!("retained pairs  : {}", outcome.retained_count);
    println!("ER-graph edges  : {}", outcome.edge_count);
    println!();
    println!("questions asked : {} ({} labels)", outcome.questions_asked, crowd.labels_collected());
    println!("loops           : {}", outcome.loops);
    println!("crowd matches   : {}", by_source(MatchSource::Crowd));
    println!("inferred matches: {}", by_source(MatchSource::Inferred));
    println!("classifier      : {}", by_source(MatchSource::Classifier));
    println!();
    println!(
        "precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        100.0 * eval.precision,
        100.0 * eval.recall,
        100.0 * eval.f1
    );
}
