//! Bibliography deduplication: the DBLP-ACM scenario (publications plus
//! split-out authors, a single `authoredBy` relationship) comparing Remp
//! against the monotonicity baseline POWER and the collective baseline
//! SiGMa on the same retained candidates.
//!
//! This is the workload where the paper reports Remp's *smallest* edge
//! (one relationship type, many isolated components) — a useful sanity
//! check that the reproduction shows the same muted advantage.
//!
//! ```sh
//! cargo run --release --example bibliography_dedup
//! ```

use remp::baselines::{power, sigma, PowerConfig, SigmaConfig};
use remp::core::{evaluate_matches, prepare, Remp, RempConfig};
use remp::crowd::{LabelSource, SimulatedCrowd};
use remp::datasets::{dblp_acm, generate};

fn main() {
    let dataset = generate(&dblp_acm(0.5));
    println!("KB1 (DBLP-like): {}", dataset.kb1.stats());
    println!("KB2 (ACM-like) : {}", dataset.kb2.stats());
    println!("gold matches   : {}\n", dataset.num_gold());

    let config = RempConfig::default();
    // All methods consume the same retained candidate set, as in §VIII.
    let prep = prepare(&dataset.kb1, &dataset.kb2, &config);
    println!(
        "candidates {} → retained {} ({} ER-graph edges)\n",
        prep.candidate_count,
        prep.candidates.len(),
        prep.graph.num_edges()
    );
    let truth = |u1, u2| dataset.is_match(u1, u2);

    // --- Remp, through the session API on the shared stage-1 output ---
    // (`remp.run_prepared(...)` collapses this loop into one call; the
    // session form is what a real crowd deployment would drive.)
    let mut crowd = SimulatedCrowd::paper_default(1);
    let remp = Remp::new(config.clone());
    let mut session = remp
        .begin_prepared(&dataset.kb1, &dataset.kb2, prep.clone())
        .expect("default config is valid");
    while let Some(batch) = session.next_batch().expect("fresh session") {
        for q in &batch.questions {
            let labels = crowd.label(truth(q.pair.0, q.pair.1));
            session.submit(q.id, labels).expect("fresh question id");
        }
    }
    let outcome = session.finish();
    let remp_eval = evaluate_matches(outcome.matches.iter().copied(), &dataset.gold);
    println!(
        "Remp    : F1 {:>5.1}%  #Q {:>4}  (#loops {})",
        100.0 * remp_eval.f1,
        outcome.questions_asked,
        outcome.loops
    );

    // --- POWER ---
    let mut crowd = SimulatedCrowd::paper_default(1);
    let pow =
        power(&prep.candidates, &prep.sim_vectors, &truth, &mut crowd, &PowerConfig::default());
    let pow_eval = evaluate_matches(pow.matches.iter().copied(), &dataset.gold);
    println!("POWER   : F1 {:>5.1}%  #Q {:>4}", 100.0 * pow_eval.f1, pow.questions);

    // --- SiGMa (no crowd) ---
    let sig = sigma(&prep.candidates, &prep.graph, &[], &SigmaConfig::default());
    let sig_eval = evaluate_matches(sig.matches.iter().copied(), &dataset.gold);
    println!("SiGMa   : F1 {:>5.1}%  #Q    0 (machine-only)", 100.0 * sig_eval.f1);

    println!("\ncrowd labels collected across runs: {}", crowd.labels_collected());
    println!(
        "Expected shape (paper §VIII-A): Remp's F1 leads but its question\n\
         advantage is small here — one relationship type limits propagation."
    );
}
