//! The paper's Fig. 1 scenario, built by hand: aligning a YAGO-like and a
//! DBpedia-like movie KB where label evidence alone cannot separate the
//! two Joans/Johns, but relational match propagation can.
//!
//! The example walks the internals step by step — candidate generation,
//! consistency estimation, neighbour propagation and distant propagation —
//! and shows how labeling a single pair (`Tim ≃ Tim`) resolves movies,
//! actors and birth places across entity types.
//!
//! ```sh
//! cargo run --release --example movie_alignment
//! ```

use remp::core::{Remp, RempConfig};
use remp::crowd::Label;
use remp::ergraph::{generate_candidates, ErGraph};
use remp::kb::{Kb, KbBuilder, Value};
use remp::par::Parallelism;
use remp::propagation::{
    inferred_sets_dijkstra, Consistency, ConsistencyTable, ProbErGraph, PropagationConfig,
};

/// Builds one side of Fig. 1. The two KBs use different relationship
/// names (YAGO's `wasBornIn` vs DBpedia's `birthPlace`) — matching them is
/// the consistency model's job, not string matching.
fn build_kb(name: &str, born_rel: &str) -> Kb {
    let mut b = KbBuilder::new(name);
    let label = b.add_attr("label");
    let acted = b.add_rel("actedIn");
    let directed = b.add_rel("directedBy");
    let born = b.add_rel(born_rel);

    let entity = |b: &mut KbBuilder, l: &str| {
        let e = b.add_entity(l);
        b.add_attr_triple(e, label, Value::text(l));
        e
    };
    let joan = entity(&mut b, "Joan Allen");
    let john = entity(&mut b, "John Cusack");
    let tim = entity(&mut b, "Tim Robbins");
    let cradle = entity(&mut b, "Cradle Will Rock");
    let player = entity(&mut b, "The Player");
    let nyc = entity(&mut b, "New York City");
    let evanston = entity(&mut b, "Evanston");

    b.add_rel_triple(joan, acted, cradle);
    b.add_rel_triple(john, acted, cradle);
    b.add_rel_triple(tim, acted, player);
    b.add_rel_triple(cradle, directed, tim);
    b.add_rel_triple(player, directed, tim);
    b.add_rel_triple(joan, born, nyc);
    b.add_rel_triple(john, born, evanston);
    b.finish()
}

fn main() {
    let yago = build_kb("YAGO", "wasBornIn");
    let dbpedia = build_kb("DBpedia", "birthPlace");

    // Stage 1: candidate generation (label Jaccard ≥ 0.3).
    let candidates = generate_candidates(&yago, &dbpedia, 0.3, &Parallelism::Auto);
    println!("candidate pairs ({}):", candidates.len());
    for (_, (u1, u2)) in candidates.iter() {
        println!("  (y:{} , d:{})", yago.label(u1), dbpedia.label(u2));
    }

    // The ER graph (Definition 2): edges mirror relationship triples.
    let graph = ErGraph::build(&yago, &dbpedia, &candidates);
    println!("\nER graph: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    // Stage 2: consistency + probabilistic ER graph. With identical
    // mirrored structure every relationship pair is perfectly consistent;
    // we also illustrate the ConsistencyTable API with manual values.
    let cons = ConsistencyTable::from_entries(
        graph.labels().map(|(id, _)| (id, Consistency { eps1: 0.95, eps2: 0.95 })),
    );
    let pg = ProbErGraph::build(
        &yago,
        &dbpedia,
        &candidates,
        &graph,
        &cons,
        &PropagationConfig::default(),
        &Parallelism::Auto,
    );

    // Stage 3: what would one labeled match infer? (τ = 0.9)
    let inferred = inferred_sets_dijkstra(&pg, 0.9, &Parallelism::Auto);
    let tim = candidates
        .iter()
        .find(|&(_, (u1, _))| yago.label(u1) == "Tim Robbins")
        .map(|(id, _)| id)
        .expect("Tim pair is a candidate");

    println!("\nlabeling (y:Tim Robbins ≃ d:Tim Robbins) infers:");
    for &(p, prob) in inferred.inferred(tim) {
        let (u1, u2) = candidates.pair(p);
        println!(
            "  Pr[{:>16} ≃ {:<16}] = {:.3}",
            format!("y:{}", yago.label(u1)),
            format!("d:{}", dbpedia.label(u2)),
            prob
        );
    }

    // The headline of the paper's introduction: the inference crosses
    // entity types — person → movie → person → city.
    let reaches_city = inferred.inferred(tim).iter().any(|&(p, _)| {
        let (u1, _) = candidates.pair(p);
        yago.label(u1) == "New York City"
    });
    println!(
        "\ncross-type propagation person→movie→person→city: {}",
        if reaches_city { "reached New York City ✓" } else { "not reached ✗" }
    );

    // Stage 4, through the public session API: the same scenario driven
    // end to end. The session hands us the Tim question first (highest
    // expected benefit) and one truthful answer resolves the whole
    // component through propagation — no further batch is needed.
    println!("\n--- the same alignment through the session API ---");
    let remp = Remp::new(RempConfig::default().with_mu(1));
    let mut session = remp.begin(&yago, &dbpedia).expect("default config is valid");
    while let Some(batch) = session.next_batch().expect("fresh session") {
        for question in &batch.questions {
            println!(
                "loop {}: asking workers about (y:{} ≃ d:{})",
                batch.loop_index, question.context.label1, question.context.label2
            );
            // Everything matches by construction in Fig. 1's world.
            let receipt = session
                .submit(question.id, vec![Label::new(0.95, true)])
                .expect("fresh question id");
            for (u1, u2) in &receipt.propagated {
                println!("  ⇒ inferred (y:{} ≃ d:{})", yago.label(*u1), dbpedia.label(*u2));
            }
        }
    }
    let outcome = session.finish();
    println!(
        "{} matches from {} question(s) in {} loop(s)",
        outcome.matches.len(),
        outcome.questions_asked,
        outcome.loops
    );
}
