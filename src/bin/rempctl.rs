//! `rempctl` — turn knowledge-base files into crowd campaigns.
//!
//! ```text
//! rempctl export --preset TINY --out fixtures/        # synthetic → text
//! rempctl import fixtures/kb1.nt fixtures/kb1.rkb     # text → snapshot
//! rempctl inspect fixtures/kb1.rkb                    # Table II stats
//! rempctl run --kb1 fixtures/kb1.rkb --kb2 fixtures/kb2.rkb \
//!             --gold fixtures/gold.tsv                # full campaign
//! ```
//!
//! Argument parsing is hand-rolled (the build environment has no
//! crates.io access, consistent with the rest of the workspace).

use std::collections::HashMap;
use std::io::IsTerminal;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use remp_core::profile::{
    parse_min_stage_speedup, parse_thread_list, run_pipeline_bench, PipelineBenchOptions,
    StageBaseline,
};
use remp_core::{evaluate_matches, run_on_dataset, Parallelism, RempConfig};
use remp_crowd::{LabelSource, OracleCrowd, SimulatedCrowd};
use remp_datasets::{generate, preset_by_name, tiny};
use remp_ingest::{
    export_dataset, load_gold, load_kb, load_snapshot, snapshot_stats, write_snapshot,
    ExportFormat, FileDataset,
};
use remp_json::Json;
use remp_kb::EntityId;
use remp_obs::{names, Exposition};
use remp_scale::{
    generate_dataset, process_shard, run_scale_bench, run_sharded_local, write_campaign, CrowdSpec,
    MergedOutcome, PlanMode, ScaleBenchOptions, ScaleSpec, DEFAULT_LEASE_MS,
};
use remp_serve::{
    drive, install_signal_handlers, outcome_matches, reference_outcome, signal_stop_flag,
    CrowdParams, CrowdPolicy, ServeClient, Server, ServerConfig, WireCrowd,
};
use remp_sim::{preset, preset_names, Scenario, SimReport};

const USAGE: &str = "\
rempctl — knowledge-base ingestion and file-backed Remp campaigns

USAGE:
    rempctl export --preset NAME --out DIR [--scale X] [--format nt|csv]
        Generate a synthetic preset (IIMB, D-A, I-Y, D-Y, TINY) and write
        it as loadable text files: two KBs plus gold.tsv.

    rempctl import INPUT OUTPUT.rkb [--name NAME]
        Parse a text KB (a .nt file or a CSV table directory) and write a
        binary .rkb snapshot that loads back without re-parsing.

    rempctl inspect PATH...
        Load KBs (.nt, CSV directory, or .rkb) and print Table II-style
        statistics plus load timings.

    rempctl run --kb1 PATH --kb2 PATH --gold PATH [options]
        Run a full crowd campaign on file-backed KBs via the session API.
        Crowd options:
            --oracle            perfect labels (ground truth)
            --workers N         simulated worker pool size   [100]
            --quality MIN,MAX   worker quality bounds        [0.8,0.99]
            --per-question N    labels per question          [5]
            --seed N            crowd RNG seed               [42]
        Campaign options:
            --budget N          max questions (default: unlimited)
            --mu N              questions per loop (default: config)
            --threads N         worker threads for the pipeline stages
                                (default: auto — REMP_THREADS or all cores)
            --trace-out PATH    write a spans.jsonl stage trace of the
                                campaign for offline timeline analysis

    rempctl serve [--addr HOST:PORT] [--state-dir DIR] [--threads POLICY]
        Run the campaign server (same daemon as the rempd binary):
        hosts concurrent crowd campaigns over HTTP, checkpoints them
        to --state-dir on SIGTERM/SIGINT and resumes them on restart.
        See crates/serve/PROTOCOL.md for the wire protocol.

    rempctl drive --url HOST:PORT --kb1 PATH --kb2 PATH --gold PATH
                  [--campaign ID] [--name NAME] [--verify]
                  [--workers N] [--quality MIN,MAX] [--per-question N]
                  [--seed N] [--budget N] [--mu N]
        Drive a campaign on a running server with a seeded simulated
        crowd *over the wire*: create the campaign (or attach with
        --campaign), lease questions worker by worker, answer from the
        local gold standard, and print the final metrics. With
        --verify, also run the identical campaign in process and fail
        unless the server's resolutions, question order and submission
        log are bit-identical.

    rempctl simulate SCENARIO [--seed N] [--threads POLICY] [--out PATH]
                     [--trace PATH] [--min-f1 X] [--max-questions N]
                     [--require-complete]
    rempctl simulate --sweep spam|churn|all [--seed N] [--out PATH]
    rempctl simulate --list
        Run a discrete-tick campaign simulation with a virtual crowd —
        worker churn, latency, drifting quality, spammers and colluding
        cliques — entirely on virtual time (no sleeps, no server).
        SCENARIO is a built-in preset name (--list) or a scenario JSON
        file (see crates/sim/SCENARIOS.md). Same scenario + same seed
        reproduce a bit-identical event trace; --trace writes it as
        JSONL. --out writes the run report as JSON. --min-f1,
        --max-questions and --require-complete turn the run into a CI
        gate. --sweep instead runs the robustness curves (F1 vs spam
        rate, crowd cost vs churn) and writes them to --out
        [ROBUSTNESS.json].

    rempctl scale-gen --entities N --out DIR [--seed N] [--match-rate X]
                      [--mean-degree X] [--rels N] [--vocab N]
                      [--label-noise X] [--name NAME]
        Stream a seeded synthetic two-KB world of N entities per KB
        (power-law relationship degrees, X overlap) straight to
        kb1.rkb / kb2.rkb / gold.tsv without ever materialising a KB in
        memory — the out-of-core path to 10^5..10^6-entity campaigns.

    rempctl scale-plan --dir DIR [--shards N] [--full | --max-block N]
                       [--budget N] [--seed N] [--name NAME] [--oracle]
                       [--workers N] [--quality MIN,MAX] [--per-question N]
                       [--kb1 PATH] [--kb2 PATH] [--gold PATH]
        Split a campaign into self-contained shard files
        (shard-*.rshard + campaign.json in DIR). The default streaming
        planner walks token blocks canopy-at-a-time (--max-block caps
        |b1|*|b2| per block [200000]) and groups relationally adjacent
        pairs; --full instead runs the exact in-memory pipeline
        (small campaigns only). KB/gold paths default to the
        scale-gen layout under DIR.

    rempctl scale-run --dir DIR [--workers N] [--url HOST:PORT]
                      [--out PATH] [--lease-ms N]
        Run every shard of the campaign in DIR and merge. --workers 0
        (default) runs in process; --workers N > 0 starts an embedded
        coordinator (or uses the rempd at --url) and spawns N separate
        `rempctl shard-worker` OS processes that lease shards over
        HTTP. Both paths produce bit-identical merged outcomes. --out
        writes the merged outcome JSON.

    rempctl shard-worker --url HOST:PORT --job ID [--worker NAME]
                         [--poll-ms N]
        One worker process: poll the coordinator for shard leases,
        process each shard deterministically, post results back, exit
        when the job reports done. Spawned by scale-run; also usable
        against a long-running rempd across machines.

    rempctl top --url HOST:PORT [--interval SECS] [--iterations N]
        Live dashboard for a running server: scrape /metrics and
        /healthz and render a refreshing per-campaign table — open
        questions, lease counters, request-latency quantiles and the
        hottest pipeline stages. Reads only; never advances a
        campaign. --iterations 0 (the default) polls every --interval
        seconds [2] until interrupted; --iterations 1 prints a single
        snapshot.

    rempctl metrics --url HOST:PORT [--require NAME,NAME,...]
        Scrape /metrics, verify it parses as Prometheus text
        exposition, and with --require exit non-zero unless every
        listed metric family is present — the CI well-formedness gate.

    rempctl storm [--workers N] [--requests N] [--seed N]
                  [--min-rps X] [--out PATH]
        The serving bench: start an embedded rempd on a free port and
        hammer it over real sockets. Phase 1 pings /healthz from N
        concurrent workers [500], --requests each [20], once over
        keep-alive connections and once opening a fresh connection per
        request, reporting requests/s and p50/p99 latency for both.
        Phase 2 runs a TINY crowd campaign where every worker blocks in
        `GET .../next?wait_ms=` long-polls (seeded 10% answer noise).
        Phase 3 copies the live state dir — the exact kill -9 disk
        image: genesis checkpoint plus answer WAL — restarts on the
        copy and measures WAL replay time, failing unless the recovered
        outcome is byte-identical. Writes BENCH_serve.json [--out].
        With --min-rps X, exit non-zero when keep-alive requests/s
        falls below X (the CI serving-regression gate).

    rempctl bench [--preset NAME] [--scale X] [--threads LIST]
                  [--out PATH] [--min-speedup X] [--trace-out PATH]
                  [--max-obs-overhead PCT] [--baseline PATH]
                  [--min-stage-speedup STAGE=X,...] [--stage-delta-out PATH]
        Profile the hot pipeline stages and a full oracle campaign at each
        thread count (default 1,2,4 on the D-A preset at scale 8) and
        write the report (default: BENCH_pipeline.json). With
        --min-speedup X, exit non-zero when the end-to-end speedup of the
        most-parallel run over the sequential run is below X (the CI
        regression gate). --trace-out writes a spans.jsonl stage trace
        of the whole bench; --max-obs-overhead PCT exits non-zero when
        the instrumented campaign is more than PCT percent slower than
        the same campaign with observability disabled.

        --baseline PATH reads a committed BENCH_pipeline.json (before
        --out overwrites it), prints per-stage before/after rows of the
        sequential run and writes them to --stage-delta-out [default:
        BENCH_stage_delta.json]. With --min-stage-speedup, e.g.
        prune=1.3,candidates=1.3,sim_vectors=1.2, exit non-zero when any
        listed stage's sequential speedup over the baseline falls below
        its floor (the per-stage CI regression gate).

    rempctl bench --scale [--points N,N,...] [--budget N] [--seed N]
                  [--max-rss-mb MB] [--out PATH] [--work-dir DIR]
                  [--keep-artifacts]
        The scale bench: for each point, generate a world of N entities
        per KB out of core, plan a streamed sharded campaign, run every
        shard and record wall-clock per stage plus the process peak RSS
        (remp_peak_rss_bytes). Writes BENCH_scale.json [--out]. With
        --max-rss-mb, exit non-zero when any point's peak RSS exceeds
        the bound — the CI bounded-memory gate. Default points:
        10000,100000.

Observability: metrics, spans and the event log are on by default.
REMP_OBS=0 disables all instrumentation; REMP_LOG=debug|info|warn|error
sets the stderr event-log level (default: warn).
";

enum CliError {
    Usage(String),
    Failed(String),
}

impl<E: std::error::Error> From<E> for CliError {
    fn from(e: E) -> CliError {
        CliError::Failed(e.to_string())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("rempctl: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Failed(msg)) => {
            eprintln!("rempctl: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    let opts = Opts::parse(rest)?;
    match command.as_str() {
        "export" => cmd_export(&opts),
        "import" => cmd_import(&opts),
        "inspect" => cmd_inspect(&opts),
        "run" => cmd_run(&opts),
        "serve" => cmd_serve(&opts),
        "drive" => cmd_drive(&opts),
        "simulate" => cmd_simulate(&opts),
        "top" => cmd_top(&opts),
        "metrics" => cmd_metrics(&opts),
        "storm" => cmd_storm(&opts),
        "bench" => cmd_bench(&opts),
        "scale-gen" => cmd_scale_gen(&opts),
        "scale-plan" => cmd_scale_plan(&opts),
        "scale-run" => cmd_scale_run(&opts),
        "shard-worker" => cmd_shard_worker(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

// ---- argument parsing -------------------------------------------------

/// Switches that take no value.
const SWITCHES: [&str; 6] =
    ["--oracle", "--verify", "--require-complete", "--list", "--full", "--keep-artifacts"];

/// Options that may appear with or without a value. `--scale` takes a
/// dataset scale for `export` and the pipeline bench, but is a bare
/// mode switch for `rempctl bench --scale` (the scale bench); when the
/// next token is another option (or the end of the line), the bare form
/// parses to an empty value.
const OPTIONAL_VALUE: [&str; 1] = ["--scale"];

struct Opts {
    positional: Vec<String>,
    named: HashMap<String, String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, CliError> {
        let mut positional = Vec::new();
        let mut named = HashMap::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let bare_optional = OPTIONAL_VALUE.contains(&arg.as_str())
                    && iter.peek().is_none_or(|next| next.starts_with("--"));
                if SWITCHES.contains(&arg.as_str()) || bare_optional {
                    named.insert(key.to_owned(), String::new());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| CliError::Usage(format!("option --{key} needs a value")))?;
                    named.insert(key.to_owned(), value.clone());
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Opts { positional, named })
    }

    fn required(&self, key: &str) -> Result<&str, CliError> {
        self.named
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required option --{key}")))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.named.get(key).map(String::as_str)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => {
                raw.parse().map_err(|_| CliError::Usage(format!("--{key}: cannot parse {raw:?}")))
            }
        }
    }
}

// ---- commands ---------------------------------------------------------

fn cmd_export(opts: &Opts) -> Result<(), CliError> {
    let preset = opts.required("preset")?;
    let out = PathBuf::from(opts.required("out")?);
    let scale: f64 = opts.parsed("scale", 1.0)?;
    let format = match opts.get("format").unwrap_or("nt") {
        "nt" | "ntriples" => ExportFormat::NTriples,
        "csv" => ExportFormat::Csv,
        other => return Err(CliError::Usage(format!("unknown format {other:?}"))),
    };
    let spec = preset_by_name(preset, scale)
        .ok_or_else(|| CliError::Usage(format!("unknown preset {preset:?}")))?;
    let started = Instant::now();
    let dataset = generate(&spec);
    let paths = export_dataset(&dataset, &out, format)?;
    println!("exported {} (scale {scale}) in {:.1?}", dataset.name, started.elapsed());
    println!("  {}", dataset.kb1.stats());
    println!("  {}", dataset.kb2.stats());
    println!("  {} gold matches", dataset.num_gold());
    println!("  kb1:  {}", paths.kb1.display());
    println!("  kb2:  {}", paths.kb2.display());
    println!("  gold: {}", paths.gold.display());
    Ok(())
}

fn cmd_import(opts: &Opts) -> Result<(), CliError> {
    let [input, output] = opts.positional.as_slice() else {
        return Err(CliError::Usage("import needs exactly INPUT and OUTPUT.rkb".into()));
    };
    let input = Path::new(input);
    let name = match opts.get("name") {
        Some(n) => n.to_owned(),
        None => default_name(input),
    };
    let started = Instant::now();
    let loaded = load_kb(input, &name)?;
    let parsed_in = started.elapsed();
    let started = Instant::now();
    write_snapshot(&loaded.kb, &loaded.external_ids, Path::new(output))?;
    println!(
        "parsed {} in {parsed_in:.1?}, snapshot written in {:.1?}",
        input.display(),
        started.elapsed()
    );
    println!("  {}", loaded.kb.stats());
    println!("  {output}");
    Ok(())
}

fn cmd_inspect(opts: &Opts) -> Result<(), CliError> {
    if opts.positional.is_empty() {
        return Err(CliError::Usage("inspect needs at least one PATH".into()));
    }
    for raw in &opts.positional {
        let path = Path::new(raw);
        let started = Instant::now();
        // Snapshots stream through the section-at-a-time `RkbSections`
        // reader: stats for a million-entity `.rkb` print at O(section)
        // memory, without materialising the KB.
        if path.extension().is_some_and(|e| e == "rkb") {
            let stats = snapshot_stats(path)?;
            println!("{} (streamed in {:.1?})", path.display(), started.elapsed());
            println!("  {stats}");
        } else {
            let loaded = load_kb(path, &default_name(path))?;
            println!("{} (loaded in {:.1?})", path.display(), started.elapsed());
            println!("  {}", loaded.kb.stats());
        }
    }
    Ok(())
}

fn cmd_run(opts: &Opts) -> Result<(), CliError> {
    let kb1 = Path::new(opts.required("kb1")?);
    let kb2 = Path::new(opts.required("kb2")?);
    let gold = Path::new(opts.required("gold")?);

    let started = Instant::now();
    let dataset = FileDataset::load("file-backed", kb1, kb2, gold)?.into_generated();
    println!("loaded campaign in {:.1?}", started.elapsed());
    println!("  {}", dataset.kb1.stats());
    println!("  {}", dataset.kb2.stats());
    println!("  {} gold matches", dataset.gold.len());

    let mut config = RempConfig::default();
    if let Some(budget) = opts.get("budget") {
        let budget: usize = budget
            .parse()
            .map_err(|_| CliError::Usage(format!("--budget: cannot parse {budget:?}")))?;
        config = config.with_budget(budget);
    }
    if let Some(mu) = opts.get("mu") {
        let mu: usize =
            mu.parse().map_err(|_| CliError::Usage(format!("--mu: cannot parse {mu:?}")))?;
        config = config.with_mu(mu);
    }
    if let Some(threads) = opts.get("threads") {
        let parallelism = Parallelism::from_label(threads).ok_or_else(|| {
            CliError::Usage(format!(
                "--threads: expected a worker count, 'sequential' or 'auto', got {threads:?}"
            ))
        })?;
        config = config.with_parallelism(parallelism);
    }

    let mut crowd: Box<dyn LabelSource> = if opts.get("oracle").is_some() {
        Box::new(OracleCrowd::new())
    } else {
        let workers: usize = opts.parsed("workers", 100)?;
        let per_question: usize = opts.parsed("per-question", 5)?;
        let seed: u64 = opts.parsed("seed", 42)?;
        let quality = opts.get("quality").unwrap_or("0.8,0.99");
        let (min_q, max_q): (f64, f64) = quality
            .split_once(',')
            .and_then(|(a, b)| Some((a.trim().parse().ok()?, b.trim().parse().ok()?)))
            .ok_or_else(|| {
                CliError::Usage(format!("--quality: expected MIN,MAX, got {quality:?}"))
            })?;
        // Validate up front: SimulatedCrowd::new asserts on bad bounds,
        // and a typo should get a usage message, not a panic.
        if !(0.0..=1.0).contains(&min_q) || !(0.0..=1.0).contains(&max_q) || min_q > max_q {
            return Err(CliError::Usage(format!(
                "--quality: bounds must satisfy 0 ≤ MIN ≤ MAX ≤ 1, got {quality:?}"
            )));
        }
        if workers == 0 || per_question == 0 {
            return Err(CliError::Usage("--workers and --per-question must be at least 1".into()));
        }
        Box::new(SimulatedCrowd::new(workers, min_q, max_q, per_question, seed))
    };

    let trace_out = trace_out_begin(opts);
    let started = Instant::now();
    let result = run_on_dataset(&dataset, &config, crowd.as_mut());
    println!("campaign finished in {:.1?}", started.elapsed());
    println!("  questions asked : {} ({} labels)", result.questions, crowd.labels_collected());
    println!("  loops           : {}", result.loops);
    println!(
        "  precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        100.0 * result.eval.precision,
        100.0 * result.eval.recall,
        100.0 * result.eval.f1
    );
    print_loop_stats(&result.loop_stats);
    if let Some(path) = trace_out {
        trace_out_finish(path)?;
    }
    Ok(())
}

/// Starts a span collection when `--trace-out` was given, forcing
/// observability on so there is something to collect.
fn trace_out_begin(opts: &Opts) -> Option<&str> {
    let path = opts.get("trace-out")?;
    if !remp_obs::enabled() {
        remp_obs::set_enabled(true);
    }
    remp_obs::trace_begin();
    Some(path)
}

/// Drains the active span collection into a `spans.jsonl` file.
fn trace_out_finish(path: &str) -> Result<(), CliError> {
    let spans = remp_obs::trace_take();
    std::fs::write(path, remp_obs::spans_to_jsonl(&spans))?;
    println!("  wrote {} spans to {path}", spans.len());
    Ok(())
}

/// Where the campaign's compute time went: stage-2/3 totals plus how much
/// of the graph the incremental engine actually touched per loop.
fn print_loop_stats(stats: &[remp_core::LoopStat]) {
    let Some(first) = stats.first() else { return };
    let total: f64 = stats.iter().map(|s| s.total_s()).sum();
    let consistency: f64 = stats.iter().map(|s| s.refresh.consistency_s).sum();
    let propagation: f64 = stats.iter().map(|s| s.refresh.propagation_s).sum();
    let inferred: f64 = stats.iter().map(|s| s.refresh.inferred_s).sum();
    let selection: f64 = stats.iter().map(|s| s.selection_s).sum();
    println!(
        "  stage 2+3       : {total:.2}s total (consistency {consistency:.2}s, \
         propagation {propagation:.2}s, inferred sets {inferred:.2}s, selection {selection:.2}s)"
    );
    println!(
        "  first loop      : {:.3}s full build ({} vertices, {} sources)",
        first.total_s(),
        first.refresh.dirty_vertices,
        first.refresh.recomputed_sources
    );
    if stats.len() > 1 {
        let tail = &stats[1..];
        let mean_s = tail.iter().map(|s| s.total_s()).sum::<f64>() / tail.len() as f64;
        let mean_vertices =
            tail.iter().map(|s| s.refresh.dirty_vertices).sum::<usize>() / tail.len();
        let mean_sources =
            tail.iter().map(|s| s.refresh.recomputed_sources).sum::<usize>() / tail.len();
        let retired = stats.last().map(|s| s.refresh.retired_components).unwrap_or(0);
        println!(
            "  later loops     : {mean_s:.3}s avg incremental (avg {mean_vertices} dirty \
             vertices, {mean_sources} sources; {retired} components retired at the end)"
        );
    }
}

fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    let mut config = ServerConfig::default();
    if let Some(addr) = opts.get("addr") {
        config.addr = addr.to_owned();
    }
    if let Some(dir) = opts.get("state-dir") {
        config.state_dir = Some(PathBuf::from(dir));
    }
    if let Some(threads) = opts.get("threads") {
        config.parallelism = Parallelism::from_label(threads)
            .ok_or_else(|| CliError::Usage(format!("--threads: unknown policy {threads:?}")))?;
    }
    install_signal_handlers();
    let server = Server::bind(&config).map_err(|e| CliError::Failed(e.to_string()))?;
    let resumed = server.registry().list();
    println!("rempctl serve: listening on http://{}", server.local_addr());
    match &config.state_dir {
        Some(dir) => println!("  state directory: {}", dir.display()),
        None => println!("  no durable state (--state-dir to enable)"),
    }
    for (id, name) in resumed {
        println!("  resumed campaign {id} ({name})");
    }
    let saved = server.run(signal_stop_flag()).map_err(|e| CliError::Failed(e.to_string()))?;
    println!("rempctl serve: shut down cleanly; {saved} campaign(s) checkpointed");
    Ok(())
}

fn cmd_drive(opts: &Opts) -> Result<(), CliError> {
    let url = opts.required("url")?;
    let kb1 = opts.required("kb1")?.to_owned();
    let kb2 = opts.required("kb2")?.to_owned();
    let gold = Path::new(opts.required("gold")?);
    let params = CrowdParams {
        workers: opts.parsed("workers", 100)?,
        per_question: opts.parsed("per-question", 5)?,
        seed: opts.parsed("seed", 42)?,
        ..parse_quality_bounds(opts)?
    };
    if params.workers < params.per_question || params.per_question == 0 {
        return Err(CliError::Usage(
            "--workers must be at least --per-question (and both at least 1)".into(),
        ));
    }

    // The client side of the campaign: the gold standard is the hidden
    // truth the simulated workers answer from.
    let started = Instant::now();
    let dataset = FileDataset::load("drive", Path::new(&kb1), Path::new(&kb2), gold)?;
    println!(
        "loaded local gold standard in {:.1?} ({} matches)",
        started.elapsed(),
        dataset.num_gold()
    );

    if opts.get("verify").is_some() && opts.get("campaign").is_some() {
        // The in-process reference replays the campaign from scratch with
        // this invocation's config and crowd seed; attaching to an
        // existing campaign (created who-knows-how, possibly mid-flight)
        // would make the comparison diverge spuriously.
        return Err(CliError::Usage(
            "--verify only works for campaigns this invocation creates; drop --campaign".into(),
        ));
    }

    let client = ServeClient::new(url);
    let campaign = match opts.get("campaign") {
        Some(id) => id.to_owned(),
        None => {
            let mut body = vec![
                ("name".to_owned(), Json::from(opts.get("name").unwrap_or("drive"))),
                ("kb1".to_owned(), Json::from(kb1.as_str())),
                ("kb2".to_owned(), Json::from(kb2.as_str())),
                ("per_question".to_owned(), Json::from(params.per_question)),
            ];
            if let Some(budget) = opts.get("budget") {
                let budget: u64 = budget
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--budget: cannot parse {budget:?}")))?;
                body.push(("budget".to_owned(), Json::from(budget)));
            }
            if let Some(mu) = opts.get("mu") {
                let mu: u64 = mu
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--mu: cannot parse {mu:?}")))?;
                body.push(("mu".to_owned(), Json::from(mu)));
            }
            let created = client
                .post("/campaigns", &Json::Obj(body))
                .map_err(|e| CliError::Failed(e.to_string()))?;
            created
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| CliError::Failed("server did not return a campaign id".into()))?
                .to_owned()
        }
    };
    println!("driving campaign {campaign} on http://{}", client.addr());

    let started = Instant::now();
    let mut crowd = WireCrowd::new(&params);
    let truth = |a: EntityId, b: EntityId| dataset.is_match(a, b);
    let driven = drive(&client, &campaign, &mut crowd, &truth)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let outcome_doc = client
        .get(&format!("/campaigns/{campaign}/outcome"))
        .map_err(|e| CliError::Failed(e.to_string()))?;
    println!("campaign completed over the wire in {:.1?}", started.elapsed());
    println!("  questions answered : {}", driven.len());

    let matches = decode_matches(&outcome_doc)?;
    let eval = evaluate_matches(matches.iter().copied(), &dataset.gold);
    println!(
        "  precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        100.0 * eval.precision,
        100.0 * eval.recall,
        100.0 * eval.f1
    );

    // The server-side crowd health counters the campaign accumulated.
    let status = client
        .get(&format!("/campaigns/{campaign}"))
        .map_err(|e| CliError::Failed(e.to_string()))?;
    if let Some(leases) = status.get("leases") {
        let n = |key: &str| leases.get(key).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "  leases          : {} issued, {} expired, {} re-issued",
            n("issued"),
            n("expired"),
            n("reissued")
        );
    }
    if let Some(quality) = status.get("worker_quality") {
        let f = |key: &str| quality.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
        println!(
            "  worker quality  : {} workers, estimates {:.3} min / {:.3} mean / {:.3} max",
            quality.get("count").and_then(Json::as_u64).unwrap_or(0),
            f("min"),
            f("mean"),
            f("max")
        );
    }

    if opts.get("verify").is_some() {
        let started = Instant::now();
        let mut config = RempConfig::default();
        if opts.get("budget").is_some() {
            config = config.with_budget(opts.parsed("budget", 0usize)?);
        }
        if opts.get("mu").is_some() {
            let mu = opts.parsed("mu", config.mu)?;
            config = config.with_mu(mu);
        }
        let policy = CrowdPolicy { per_question: params.per_question, ..CrowdPolicy::default() };
        let (reference, log) =
            reference_outcome(&dataset.kb1, &dataset.kb2, &config, &policy, &params, &truth)
                .map_err(|e| CliError::Failed(e.to_string()))?;
        outcome_matches(&outcome_doc, &reference, &log).map_err(|divergence| {
            CliError::Failed(format!(
                "HTTP campaign diverged from the in-process run: {divergence}"
            ))
        })?;
        println!(
            "  VERIFIED in {:.1?}: wire outcome is bit-identical to the in-process session run",
            started.elapsed()
        );
    }
    Ok(())
}

fn cmd_simulate(opts: &Opts) -> Result<(), CliError> {
    if opts.get("list").is_some() {
        println!("built-in scenario presets (rempctl simulate NAME):");
        for name in preset_names() {
            println!("  {name}");
        }
        return Ok(());
    }
    let seed: u64 = opts.parsed("seed", 42)?;
    if let Some(sweep) = opts.get("sweep") {
        return cmd_simulate_sweep(sweep, seed, opts);
    }
    let Some(spec) = opts.positional.first() else {
        return Err(CliError::Usage(
            "simulate needs a SCENARIO (a preset name or a scenario file), --sweep, or --list"
                .into(),
        ));
    };

    // Preset names win; anything else is a scenario file.
    let scenario = match preset(spec, seed) {
        Some(scenario) => scenario,
        None => {
            let text = std::fs::read_to_string(spec)
                .map_err(|e| CliError::Failed(format!("cannot read scenario {spec:?}: {e}")))?;
            let mut scenario =
                Scenario::parse(&text).map_err(|e| CliError::Failed(e.to_string()))?;
            if opts.get("seed").is_some() {
                scenario.seed = seed;
            }
            scenario
        }
    };
    let parallelism = match opts.get("threads") {
        None => None,
        Some(raw) => Some(Parallelism::from_label(raw).ok_or_else(|| {
            CliError::Usage(format!(
                "--threads: expected a worker count, 'sequential' or 'auto', got {raw:?}"
            ))
        })?),
    };

    let started = Instant::now();
    let report = remp_sim::run_scenario_with(&scenario, parallelism)
        .map_err(|e| CliError::Failed(e.to_string()))?;
    println!(
        "simulated scenario {:?} (seed {}) in {:.1?}",
        report.scenario,
        report.seed,
        started.elapsed()
    );
    print_sim_report(&report);

    if let Some(path) = opts.get("trace") {
        let mut lines = String::new();
        for event in &report.trace {
            lines.push_str(&event.to_json().to_string());
            lines.push('\n');
        }
        std::fs::write(path, lines)?;
        println!("  wrote trace to {path} ({} events)", report.trace.len());
    }
    if let Some(out) = opts.get("out") {
        std::fs::write(out, report.to_json(false).to_pretty_string())?;
        println!("  wrote report to {out}");
    }

    // CI gates: turn robustness expectations into exit codes.
    if opts.get("require-complete").is_some() && !report.complete {
        return Err(CliError::Failed(format!(
            "campaign did not complete within {} ticks (stalled: {})",
            scenario.max_ticks, report.stalled
        )));
    }
    if let Some(floor) = opts.get("min-f1") {
        let floor: f64 = floor
            .parse()
            .map_err(|_| CliError::Usage(format!("--min-f1: cannot parse {floor:?}")))?;
        if report.eval.f1 < floor {
            return Err(CliError::Failed(format!(
                "F1 {:.3} is below the required floor {floor}",
                report.eval.f1
            )));
        }
    }
    if let Some(cap) = opts.get("max-questions") {
        let cap: usize = cap
            .parse()
            .map_err(|_| CliError::Usage(format!("--max-questions: cannot parse {cap:?}")))?;
        if report.questions_asked > cap {
            return Err(CliError::Failed(format!(
                "{} questions asked, over the cap of {cap}",
                report.questions_asked
            )));
        }
    }
    Ok(())
}

fn print_sim_report(report: &SimReport) {
    println!(
        "  outcome         : {} ({} ticks, {} loops, {} questions)",
        if report.complete {
            "complete"
        } else if report.stalled {
            "STALLED"
        } else {
            "tick cap reached"
        },
        report.ticks,
        report.loops,
        report.questions_asked
    );
    println!(
        "  crowd           : {} workers ({} arrived, {} left); answers {} delivered, \
         {} rejected, {} dropped",
        report.workers_total,
        report.workers_arrived,
        report.workers_left,
        report.answers_delivered,
        report.answers_rejected,
        report.answers_dropped
    );
    println!(
        "  leases          : {} issued, {} expired, {} re-issued",
        report.leases.issued, report.leases.expired, report.leases.reissued
    );
    println!(
        "  precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        100.0 * report.eval.precision,
        100.0 * report.eval.recall,
        100.0 * report.eval.f1
    );
    if let Some(err) = report.estimator.honest_mean_abs_error {
        println!("  estimator       : mean |estimate - truth| = {err:.3} over honest workers");
    }
    if let Some(max) = report.estimator.adversary_max_estimate {
        println!("  estimator       : highest adversary estimate {max:.3}");
    }
    println!("  trace           : {} events, hash {:016x}", report.trace.len(), report.trace_hash);
}

fn cmd_simulate_sweep(sweep: &str, seed: u64, opts: &Opts) -> Result<(), CliError> {
    let started = Instant::now();
    let doc = match sweep {
        "spam" => Json::Obj(vec![
            ("version".to_owned(), Json::from(1u64)),
            ("seed".to_owned(), Json::from(seed)),
            ("spam_curve".to_owned(), remp_sim::spam_curve(seed).map_err(fail)?),
        ]),
        "churn" => Json::Obj(vec![
            ("version".to_owned(), Json::from(1u64)),
            ("seed".to_owned(), Json::from(seed)),
            ("churn_curve".to_owned(), remp_sim::churn_curve(seed).map_err(fail)?),
        ]),
        "all" => remp_sim::robustness_report(seed).map_err(fail)?,
        other => {
            return Err(CliError::Usage(format!(
                "--sweep: expected spam, churn or all, got {other:?}"
            )))
        }
    };
    println!("robustness sweep {sweep:?} (seed {seed}) finished in {:.1?}", started.elapsed());
    for (key, label, x_key) in [
        ("spam_curve", "F1 vs spam rate", "spam_fraction"),
        ("churn_curve", "cost vs churn", "churn_fraction"),
    ] {
        let Some(points) = doc.get(key).and_then(Json::as_array) else { continue };
        println!("  {label}:");
        for point in points {
            let x = point.get(x_key).and_then(Json::as_f64).unwrap_or(f64::NAN);
            let f1 = point.get("f1").and_then(Json::as_f64).unwrap_or(f64::NAN);
            let answers = point.get("answers").and_then(Json::as_u64).unwrap_or(0);
            println!("    {x:>5.2}  F1 {:>5.1}%  {answers} answers", 100.0 * f1);
        }
    }
    let out = opts.get("out").unwrap_or("ROBUSTNESS.json");
    std::fs::write(out, doc.to_pretty_string())?;
    println!("  wrote {out}");
    Ok(())
}

fn fail(e: remp_sim::SimError) -> CliError {
    CliError::Failed(e.to_string())
}

fn parse_quality_bounds(opts: &Opts) -> Result<CrowdParams, CliError> {
    let quality = opts.get("quality").unwrap_or("0.8,0.99");
    let (min_q, max_q): (f64, f64) = quality
        .split_once(',')
        .and_then(|(a, b)| Some((a.trim().parse().ok()?, b.trim().parse().ok()?)))
        .ok_or_else(|| CliError::Usage(format!("--quality: expected MIN,MAX, got {quality:?}")))?;
    if !(0.0..=1.0).contains(&min_q) || !(0.0..=1.0).contains(&max_q) || min_q > max_q {
        return Err(CliError::Usage(format!(
            "--quality: bounds must satisfy 0 ≤ MIN ≤ MAX ≤ 1, got {quality:?}"
        )));
    }
    Ok(CrowdParams { min_quality: min_q, max_quality: max_q, ..CrowdParams::paper_default(0) })
}

fn decode_matches(outcome_doc: &Json) -> Result<Vec<(EntityId, EntityId)>, CliError> {
    outcome_doc
        .get("matches")
        .and_then(Json::as_array)
        .ok_or_else(|| CliError::Failed("outcome without a matches array".into()))?
        .iter()
        .map(|pair| {
            let entity = |v: &Json| v.as_u64().and_then(|n| u32::try_from(n).ok());
            match pair.as_array() {
                Some([a, b]) => entity(a)
                    .zip(entity(b))
                    .map(|(a, b)| (EntityId(a), EntityId(b)))
                    .ok_or_else(|| CliError::Failed("non-numeric match entry".into())),
                _ => Err(CliError::Failed("malformed match entry".into())),
            }
        })
        .collect()
}

/// One `/metrics` scrape, parsed — shared by `top` and `metrics`.
fn scrape_metrics(client: &ServeClient) -> Result<Exposition, CliError> {
    let (status, text) =
        client.get_text("/metrics").map_err(|e| CliError::Failed(e.to_string()))?;
    if status != 200 {
        return Err(CliError::Failed(format!("GET /metrics answered HTTP {status}")));
    }
    Exposition::parse(&text)
        .map_err(|e| CliError::Failed(format!("/metrics is not valid text exposition: {e}")))
}

fn cmd_top(opts: &Opts) -> Result<(), CliError> {
    let client = ServeClient::new(opts.required("url")?);
    let interval: f64 = opts.parsed("interval", 2.0)?;
    let iterations: u64 = opts.parsed("iterations", 0)?;
    let clear_screen = std::io::stdout().is_terminal();
    let mut round = 0u64;
    loop {
        round += 1;
        let expo = scrape_metrics(&client)?;
        let health = client.get("/healthz").map_err(|e| CliError::Failed(e.to_string()))?;
        if clear_screen {
            // Home the cursor and wipe the previous frame.
            print!("\x1b[H\x1b[2J");
        } else if round > 1 {
            println!();
        }
        print_top(client.addr(), &expo, &health);
        if iterations != 0 && round >= iterations {
            break;
        }
        std::thread::sleep(Duration::from_secs_f64(interval.max(0.1)));
    }
    Ok(())
}

/// One `top` frame: server header, per-campaign table, hottest stages.
fn print_top(addr: &str, expo: &Exposition, health: &Json) {
    let version = health.get("version").and_then(Json::as_str).unwrap_or("?");
    let uptime = health.get("uptime_s").and_then(Json::as_f64).unwrap_or(0.0);
    let series = health.get("metric_series").and_then(Json::as_u64).unwrap_or(0);
    let quantile = |q: f64| match expo.histogram_quantile(names::HTTP_REQUEST_SECONDS, &[], q) {
        Some(v) => format!("{:.1}ms", 1e3 * v),
        None => "-".to_owned(),
    };
    let peak_rss = match expo.value(names::PEAK_RSS_BYTES, &[]) {
        Some(bytes) => format!(" · peak rss {:.0} MiB", bytes / (1024.0 * 1024.0)),
        None => String::new(),
    };
    println!(
        "rempd {version} on {addr} · up {uptime:.0}s · {:.0} requests \
         (p50 {} / p99 {}) · {series} metric series{peak_rss}",
        expo.total(names::HTTP_REQUESTS_TOTAL),
        quantile(0.5),
        quantile(0.99)
    );

    // Serving pressure, straight from /healthz: open sockets, how many
    // of them are parked long-polls, and un-compacted answer WAL.
    let pressure = |key: &str| health.get(key).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "  serving: {} connections open · {} long-poll waiters · {} WAL bytes · \
         {:.0} keep-alive reuses",
        pressure("connections_open"),
        pressure("longpoll_waiters"),
        pressure("wal_bytes"),
        expo.total(names::HTTP_KEEPALIVE_REUSE_TOTAL),
    );

    // Every campaign the registry exports gauges for, in id order.
    let mut ids: Vec<&str> = expo
        .samples
        .iter()
        .filter(|s| s.name == names::CAMPAIGN_OPEN_QUESTIONS)
        .filter_map(|s| s.label("campaign"))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.is_empty() {
        println!("  no campaigns (or the server runs with REMP_OBS=0)");
    } else {
        println!(
            "  {:<20} {:>6} {:>7} {:>8} {:>8} {:>8} {:>9}  STATE",
            "CAMPAIGN", "OPEN", "ASKED", "WORKERS", "ISSUED", "EXPIRED", "REISSUED"
        );
        for id in ids {
            let val = |name: &str| expo.value(name, &[("campaign", id)]).unwrap_or(0.0);
            let state = if val(names::CAMPAIGN_COMPLETE) >= 1.0 { "complete" } else { "running" };
            println!(
                "  {:<20} {:>6.0} {:>7.0} {:>8.0} {:>8.0} {:>8.0} {:>9.0}  {state}",
                id,
                val(names::CAMPAIGN_OPEN_QUESTIONS),
                val(names::CAMPAIGN_QUESTIONS_ASKED),
                val(names::CAMPAIGN_WORKERS),
                val(names::LEASES_ISSUED_TOTAL),
                val(names::LEASES_EXPIRED_TOTAL),
                val(names::LEASES_REISSUED_TOTAL),
            );
        }
    }

    // Where server-side compute time goes, hottest stages first.
    let sum_name = format!("{}_sum", names::STAGE_SECONDS);
    let count_name = format!("{}_count", names::STAGE_SECONDS);
    let mut stages: Vec<(&str, f64, f64)> = expo
        .samples
        .iter()
        .filter(|s| s.name == sum_name)
        .filter_map(|s| {
            let stage = s.label("stage")?;
            let calls = expo.value(&count_name, &[("stage", stage)]).unwrap_or(0.0);
            Some((stage, s.value, calls))
        })
        .collect();
    stages.sort_by(|a, b| b.1.total_cmp(&a.1));
    if !stages.is_empty() {
        println!("  hottest stages:");
        for (stage, total_s, calls) in stages.iter().take(5) {
            println!("    {stage:<20} {total_s:>9.3}s over {calls:>6.0} calls");
        }
    }
}

fn cmd_metrics(opts: &Opts) -> Result<(), CliError> {
    let client = ServeClient::new(opts.required("url")?);
    let expo = scrape_metrics(&client)?;
    println!(
        "scraped http://{}/metrics: {} samples across {} typed families",
        client.addr(),
        expo.samples.len(),
        expo.types.len()
    );
    if let Some(list) = opts.get("require") {
        let required: Vec<&str> =
            list.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        let missing: Vec<&str> =
            required.iter().copied().filter(|name| !expo.has_family(name)).collect();
        if !missing.is_empty() {
            return Err(CliError::Failed(format!(
                "missing metric families: {}",
                missing.join(", ")
            )));
        }
        println!("  all {} required families present", required.len());
    }
    Ok(())
}

// ---- storm: the serving bench -----------------------------------------

/// An embedded rempd — the same [`Server`] the daemon runs — on a free
/// port, so the bench owns the whole lifecycle including the recovery
/// restart. Stopped and joined on `stop()`; killed on drop so a failed
/// phase never leaks a listener.
struct StormServer {
    addr: String,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl StormServer {
    fn start(state_dir: &Path, max_connections: usize) -> Result<StormServer, CliError> {
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            state_dir: Some(state_dir.to_path_buf()),
            max_connections,
            ..ServerConfig::default()
        };
        let server =
            Server::bind(&config).map_err(|e| CliError::Failed(format!("storm bind: {e}")))?;
        let addr = server.local_addr().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            server.run(&flag).expect("storm server run");
        });
        Ok(StormServer { addr, stop, join: Some(join) })
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            join.join().expect("storm server thread");
        }
    }
}

impl Drop for StormServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Nearest-rank quantile over an already-sorted latency vector.
fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct PingStats {
    requests: usize,
    wall_s: f64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl PingStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("requests".into(), Json::from(self.requests)),
            ("wall_s".into(), Json::from(self.wall_s)),
            ("requests_per_s".into(), Json::from(self.rps)),
            ("p50_ms".into(), Json::from(self.p50_ms)),
            ("p99_ms".into(), Json::from(self.p99_ms)),
        ])
    }
}

/// `workers` concurrent clients × `requests` GETs of /healthz each,
/// released together by a barrier. `keepalive: false` opens a fresh
/// connection per request — the one-shot baseline the keep-alive path
/// is measured against.
fn storm_ping(
    addr: &str,
    workers: usize,
    requests: usize,
    keepalive: bool,
) -> Result<PingStats, CliError> {
    let barrier = std::sync::Barrier::new(workers + 1);
    let (wall_s, results) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let barrier = &barrier;
                scope.spawn(move || -> Result<Vec<f64>, String> {
                    let mut client = ServeClient::new(addr);
                    client.set_keepalive(keepalive);
                    // One untimed request so the measured window sees
                    // steady-state serving, not the simultaneous
                    // connect stampede the barrier would create.
                    client.get("/healthz").map_err(|e| e.to_string())?;
                    let mut latencies = Vec::with_capacity(requests);
                    barrier.wait();
                    for _ in 0..requests {
                        let t = Instant::now();
                        client.get("/healthz").map_err(|e| e.to_string())?;
                        latencies.push(t.elapsed().as_secs_f64() * 1e3);
                    }
                    Ok(latencies)
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        (t0.elapsed().as_secs_f64(), results)
    });
    let mut latencies = Vec::with_capacity(workers * requests);
    for result in results {
        latencies.extend(result.expect("ping worker").map_err(CliError::Failed)?);
    }
    latencies.sort_by(f64::total_cmp);
    Ok(PingStats {
        requests: latencies.len(),
        wall_s,
        rps: latencies.len() as f64 / wall_s.max(1e-9),
        p50_ms: quantile_ms(&latencies, 0.5),
        p99_ms: quantile_ms(&latencies, 0.99),
    })
}

struct LongPollOutcome {
    questions_asked: u64,
    answers_accepted: u64,
    answers_rejected: u64,
    peak_waiters: u64,
    wall_s: f64,
}

/// Every worker loops `GET .../next?wait_ms=2000` — parking server-side
/// when nothing is assignable — and answers what it is handed, with a
/// seeded 10% error rate so truth inference has real work. The main
/// thread samples /healthz for the peak parked-waiter count.
fn storm_campaign(
    addr: &str,
    id: &str,
    workers: usize,
    seed: u64,
    truth: &(dyn Fn(EntityId, EntityId) -> bool + Sync),
) -> Result<LongPollOutcome, CliError> {
    let t0 = Instant::now();
    let done = AtomicBool::new(false);
    let (peak_waiters, tallies) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let done = &done;
                scope.spawn(move || -> Result<(u64, u64), String> {
                    let client = ServeClient::new(addr);
                    let name = format!("storm-{i:04}");
                    // Per-worker xorshift stream off the storm seed.
                    let mut rng = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
                    let (mut accepted, mut rejected) = (0u64, 0u64);
                    loop {
                        let doc = client
                            .get(&format!("/campaigns/{id}/next?worker={name}&wait_ms=2000"))
                            .map_err(|e| e.to_string())?;
                        if doc.get("complete").and_then(Json::as_bool) == Some(true) {
                            done.store(true, Ordering::Relaxed);
                            return Ok((accepted, rejected));
                        }
                        let Some(a) = doc.get("assignment").filter(|a| !matches!(a, Json::Null))
                        else {
                            continue;
                        };
                        let field = |key: &str| {
                            a.get(key)
                                .and_then(Json::as_u64)
                                .and_then(|n| u32::try_from(n).ok())
                                .ok_or_else(|| format!("assignment without '{key}'"))
                        };
                        let qid = a
                            .get("id")
                            .and_then(Json::as_str)
                            .ok_or("assignment without id")?
                            .to_owned();
                        let mut says = truth(EntityId(field("u1")?), EntityId(field("u2")?));
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        if rng.is_multiple_of(10) {
                            says = !says;
                        }
                        let ack = client.post(
                            &format!("/campaigns/{id}/answers"),
                            &Json::Obj(vec![
                                ("worker".into(), Json::from(name.as_str())),
                                ("question".into(), Json::from(qid.as_str())),
                                ("says_match".into(), Json::from(says)),
                            ]),
                        );
                        match ack {
                            Ok(_) => accepted += 1,
                            // A lease that expired or a question that
                            // completed under us — the storm presses on.
                            Err(e) if e.status().is_some_and(|s| s < 500) => rejected += 1,
                            Err(e) => return Err(e.to_string()),
                        }
                    }
                })
            })
            .collect();
        let monitor = ServeClient::new(addr);
        let mut peak = 0u64;
        while !done.load(Ordering::Relaxed) {
            if let Ok(health) = monitor.get("/healthz") {
                let parked = health.get("longpoll_waiters").and_then(Json::as_u64).unwrap_or(0);
                peak = peak.max(parked);
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        (peak, handles.into_iter().map(|h| h.join()).collect::<Vec<_>>())
    });
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for tally in tallies {
        let (a, r) = tally.expect("storm worker").map_err(CliError::Failed)?;
        accepted += a;
        rejected += r;
    }
    let status = ServeClient::new(addr)
        .get(&format!("/campaigns/{id}"))
        .map_err(|e| CliError::Failed(e.to_string()))?;
    Ok(LongPollOutcome {
        questions_asked: status.get("questions_asked").and_then(Json::as_u64).unwrap_or(0),
        answers_accepted: accepted,
        answers_rejected: rejected,
        peak_waiters,
        wall_s: t0.elapsed().as_secs_f64(),
    })
}

/// Flat copy of the storm state dir — taken while the server is still
/// up (writes have stopped: the campaign is complete), so the copy is
/// exactly what a kill -9 would leave: the last checkpoint plus the
/// answer WAL, with no shutdown checkpoint to shortcut replay.
fn copy_state_dir(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name()))?;
        }
    }
    Ok(())
}

fn cmd_storm(opts: &Opts) -> Result<(), CliError> {
    let workers: usize = opts.parsed("workers", 500)?;
    let requests: usize = opts.parsed("requests", 20)?;
    let seed: u64 = opts.parsed("seed", 42)?;
    let min_rps: f64 = opts.parsed("min-rps", 0.0)?;
    let out = opts.get("out").unwrap_or("BENCH_serve.json").to_owned();
    if workers == 0 || requests == 0 {
        return Err(CliError::Usage("--workers and --requests must be positive".into()));
    }

    let scratch = std::env::temp_dir().join(format!("remp-storm-{}", std::process::id()));
    let state_dir = scratch.join("state");
    let recovery_dir = scratch.join("recovery");
    let _ = std::fs::remove_dir_all(&scratch);
    let max_connections = 2 * workers + 64;

    let server = StormServer::start(&state_dir, max_connections)?;
    println!("storm: embedded rempd on {} · {workers} workers", server.addr);

    // Phase 1 — /healthz floods: keep-alive, then one-connection-per-
    // request, same worker count, same request count.
    let keepalive = storm_ping(&server.addr, workers, requests, true)?;
    println!(
        "  keep-alive: {:>8.0} req/s  (p50 {:.2}ms / p99 {:.2}ms over {} requests)",
        keepalive.rps, keepalive.p50_ms, keepalive.p99_ms, keepalive.requests
    );
    let oneshot = storm_ping(&server.addr, workers, requests, false)?;
    println!(
        "  one-shot:   {:>8.0} req/s  (p50 {:.2}ms / p99 {:.2}ms over {} requests)",
        oneshot.rps, oneshot.p50_ms, oneshot.p99_ms, oneshot.requests
    );
    let speedup = keepalive.rps / oneshot.rps.max(1e-9);
    println!("  keep-alive speedup: {speedup:.1}x");

    // Phase 2 — a real campaign where every worker long-polls.
    let d = generate(&tiny(1.0));
    let truth = |a: EntityId, b: EntityId| d.is_match(a, b);
    let client = ServeClient::new(server.addr.clone());
    // A question needs per_question *distinct* workers, so a small
    // storm must not demand more redundancy than it has workers.
    let per_question = workers.min(3);
    let created = client
        .post(
            "/campaigns",
            &Json::Obj(vec![
                ("name".into(), Json::from("storm")),
                ("preset".into(), Json::from("TINY")),
                ("per_question".into(), Json::from(per_question)),
            ]),
        )
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let id = created
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| CliError::Failed("campaign create without id".into()))?
        .to_owned();
    let longpoll = storm_campaign(&server.addr, &id, workers, seed, &truth)?;
    println!(
        "  long-poll campaign: {} questions / {} answers in {:.2}s \
         (peak {} parked waiters, {} rejected)",
        longpoll.questions_asked,
        longpoll.answers_accepted,
        longpoll.wall_s,
        longpoll.peak_waiters,
        longpoll.answers_rejected
    );

    // Phase 3 — recovery: snapshot the crash image, restart on it, and
    // demand a byte-identical outcome out of WAL replay.
    let outcome_before = client
        .get(&format!("/campaigns/{id}/outcome"))
        .map_err(|e| CliError::Failed(e.to_string()))?;
    let health = client.get("/healthz").map_err(|e| CliError::Failed(e.to_string()))?;
    let wal_bytes = health.get("wal_bytes").and_then(Json::as_u64).unwrap_or(0);
    copy_state_dir(&state_dir, &recovery_dir)?;
    server.stop();

    let t0 = Instant::now();
    let recovered = StormServer::start(&recovery_dir, max_connections)?;
    let rclient = ServeClient::new(recovered.addr.clone());
    let rstatus = rclient
        .get(&format!("/campaigns/{id}"))
        .map_err(|e| CliError::Failed(format!("recovered status: {e}")))?;
    let outcome_after = rclient
        .get(&format!("/campaigns/{id}/outcome"))
        .map_err(|e| CliError::Failed(format!("recovered outcome: {e}")))?;
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    recovered.stop();
    if outcome_after != outcome_before {
        return Err(CliError::Failed(
            "recovered outcome differs from the pre-restart outcome — WAL replay is broken".into(),
        ));
    }
    println!(
        "  recovery: {} answered questions replayed from {wal_bytes} WAL bytes in {recovery_ms:.1}ms",
        rstatus.get("questions_asked").and_then(Json::as_u64).unwrap_or(0)
    );

    // The keep-alive/one-shot ratio is CPU-bound once handler cost
    // dominates connection setup, so the host's core count is part of
    // the number — record it next to the results.
    let host_cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    let report = Json::Obj(vec![
        ("workers".into(), Json::from(workers)),
        ("requests_per_worker".into(), Json::from(requests)),
        ("seed".into(), Json::from(seed)),
        ("host_cpus".into(), Json::from(host_cpus)),
        (
            "ping".into(),
            Json::Obj(vec![
                ("keepalive".into(), keepalive.to_json()),
                ("oneshot".into(), oneshot.to_json()),
                ("keepalive_speedup".into(), Json::from(speedup)),
            ]),
        ),
        (
            "longpoll".into(),
            Json::Obj(vec![
                ("workers".into(), Json::from(workers)),
                ("questions_asked".into(), Json::from(longpoll.questions_asked)),
                ("answers_accepted".into(), Json::from(longpoll.answers_accepted)),
                ("answers_rejected".into(), Json::from(longpoll.answers_rejected)),
                ("peak_parked_waiters".into(), Json::from(longpoll.peak_waiters)),
                ("wall_s".into(), Json::from(longpoll.wall_s)),
            ]),
        ),
        (
            "recovery".into(),
            Json::Obj(vec![
                (
                    "questions_replayed".into(),
                    Json::from(rstatus.get("questions_asked").and_then(Json::as_u64).unwrap_or(0)),
                ),
                ("wal_bytes".into(), Json::from(wal_bytes)),
                ("recovery_ms".into(), Json::from(recovery_ms)),
                ("outcome_identical".into(), Json::from(true)),
            ]),
        ),
    ]);
    std::fs::write(&out, report.to_pretty_string())?;
    println!("storm: report written to {out}");
    let _ = std::fs::remove_dir_all(&scratch);

    if min_rps > 0.0 && keepalive.rps < min_rps {
        return Err(CliError::Failed(format!(
            "keep-alive throughput {:.0} req/s is below the --min-rps floor {min_rps:.0}",
            keepalive.rps
        )));
    }
    Ok(())
}

fn cmd_bench(opts: &Opts) -> Result<(), CliError> {
    // Bare `--scale` selects the out-of-core scale bench; `--scale X`
    // keeps its meaning as the pipeline bench's dataset scale factor.
    if opts.get("scale") == Some("") {
        return cmd_bench_scale(opts);
    }
    let mut bench = PipelineBenchOptions::default();
    if let Some(preset) = opts.get("preset") {
        bench.preset = preset.to_owned();
    }
    bench.scale = opts.parsed("scale", bench.scale)?;
    if let Some(raw) = opts.get("threads") {
        bench.thread_counts = parse_thread_list(raw).map_err(CliError::Usage)?;
    }
    let out = opts.get("out").unwrap_or("BENCH_pipeline.json");
    let floors = opts
        .get("min-stage-speedup")
        .map(parse_min_stage_speedup)
        .transpose()
        .map_err(CliError::Usage)?;
    if floors.is_some() && opts.get("baseline").is_none() {
        return Err(CliError::Usage("--min-stage-speedup needs --baseline".into()));
    }
    // Read the baseline before the fresh report lands on --out: CI points
    // both at the committed BENCH_pipeline.json.
    let baseline = opts
        .get("baseline")
        .map(|path| -> Result<StageBaseline, CliError> {
            let src = std::fs::read_to_string(path)?;
            let doc = Json::parse(&src).map_err(|e| CliError::Failed(format!("{path}: {e}")))?;
            StageBaseline::from_report_json(&doc)
                .map_err(|e| CliError::Failed(format!("{path}: {e}")))
        })
        .transpose()?;

    let trace_out = trace_out_begin(opts);
    let mut report = run_pipeline_bench(&bench).map_err(CliError::Failed)?;
    report.baseline = baseline.clone();
    std::fs::write(out, report.to_json().to_string())?;
    for line in report.summary_lines() {
        println!("{line}");
    }
    println!("  wrote {out}");
    if let Some(path) = trace_out {
        trace_out_finish(path)?;
    }

    if let Some(baseline) = &baseline {
        let delta_out = opts.get("stage-delta-out").unwrap_or("BENCH_stage_delta.json");
        std::fs::write(delta_out, report.stage_delta_json(baseline).to_string())?;
        println!("  sequential stages vs baseline ({}):", baseline.preset);
        for (stage, baseline_s, current_s, speedup) in report.stage_delta(baseline) {
            match (baseline_s, speedup) {
                (Some(before), Some(speedup)) => {
                    println!("    {stage}: {before:.4}s -> {current_s:.4}s ({speedup:.2}x)")
                }
                _ => println!("    {stage}: (new) -> {current_s:.4}s"),
            }
        }
        println!("  wrote {delta_out}");
    }

    if let Some(floor) = opts.get("min-speedup") {
        let floor: f64 = floor
            .parse()
            .map_err(|_| CliError::Usage(format!("--min-speedup: cannot parse {floor:?}")))?;
        report.check_min_speedup(floor).map_err(CliError::Failed)?;
    }
    if let (Some(baseline), Some(floors)) = (&baseline, &floors) {
        report.check_min_stage_speedup(baseline, floors).map_err(CliError::Failed)?;
        println!("  per-stage regression gate passed ({} floors)", floors.len());
    }
    if let Some(cap) = opts.get("max-obs-overhead") {
        let cap: f64 = cap
            .parse()
            .map_err(|_| CliError::Usage(format!("--max-obs-overhead: cannot parse {cap:?}")))?;
        report.check_max_obs_overhead(cap).map_err(CliError::Failed)?;
    }
    Ok(())
}

// ---- scale: out-of-core generation, sharding, multi-process runs ------

fn cmd_scale_gen(opts: &Opts) -> Result<(), CliError> {
    let entities: usize = opts
        .required("entities")?
        .parse()
        .map_err(|_| CliError::Usage("--entities: expected a positive integer".into()))?;
    let out = PathBuf::from(opts.required("out")?);
    let mut spec = ScaleSpec::new(opts.get("name").unwrap_or("scale"), entities);
    spec.seed = opts.parsed("seed", spec.seed)?;
    spec.match_rate = opts.parsed("match-rate", spec.match_rate)?;
    spec.mean_degree = opts.parsed("mean-degree", spec.mean_degree)?;
    spec.rels = opts.parsed("rels", spec.rels)?;
    spec.vocab = opts.parsed("vocab", spec.vocab)?;
    spec.label_noise = opts.parsed("label-noise", spec.label_noise)?;
    spec.validate().map_err(CliError::Usage)?;

    let started = Instant::now();
    let report = generate_dataset(&spec, &out)?;
    println!(
        "generated {} entities per KB in {:.1?} (seed {}, vocab {})",
        report.entities,
        started.elapsed(),
        spec.seed,
        spec.effective_vocab()
    );
    println!(
        "  {} gold pairs; {} + {} relationship triples",
        report.gold_pairs, report.rel_triples.0, report.rel_triples.1
    );
    for name in ["kb1.rkb", "kb2.rkb", "gold.tsv"] {
        let path = out.join(name);
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        println!("  {} ({:.1} MiB)", path.display(), bytes as f64 / (1024.0 * 1024.0));
    }
    Ok(())
}

fn cmd_scale_plan(opts: &Opts) -> Result<(), CliError> {
    let dir = PathBuf::from(opts.required("dir")?);
    let kb1_path = opts.get("kb1").map(PathBuf::from).unwrap_or_else(|| dir.join("kb1.rkb"));
    let kb2_path = opts.get("kb2").map(PathBuf::from).unwrap_or_else(|| dir.join("kb2.rkb"));
    let gold_path = opts.get("gold").map(PathBuf::from).unwrap_or_else(|| dir.join("gold.tsv"));
    let shards: usize = opts.parsed("shards", 4)?;
    let seed: u64 = opts.parsed("seed", 42)?;
    let name = opts.get("name").unwrap_or("scale").to_owned();

    let started = Instant::now();
    let kb1 = load_snapshot(&kb1_path)?;
    let kb2 = load_snapshot(&kb2_path)?;
    let (ids1, ids2) = (kb1.id_map(), kb2.id_map());
    let gold = load_gold(&gold_path, &ids1, &ids2)?;
    drop(ids1);
    drop(ids2);
    println!(
        "loaded {} + {} entities, {} gold pairs in {:.1?}",
        kb1.kb.num_entities(),
        kb2.kb.num_entities(),
        gold.len(),
        started.elapsed()
    );

    let mut config = RempConfig::default();
    if let Some(budget) = opts.get("budget") {
        let budget: usize = budget
            .parse()
            .map_err(|_| CliError::Usage(format!("--budget: cannot parse {budget:?}")))?;
        config = config.with_budget(budget);
    }
    let mode = if opts.get("full").is_some() {
        PlanMode::Full
    } else {
        PlanMode::Stream { max_block: opts.parsed("max-block", 200_000usize)? }
    };
    let crowd = if opts.get("oracle").is_some() {
        CrowdSpec::Oracle
    } else {
        let params = parse_quality_bounds(opts)?;
        CrowdSpec::Simulated {
            workers: opts.parsed("workers", 100)?,
            min_quality: params.min_quality,
            max_quality: params.max_quality,
            per_question: opts.parsed("per-question", 5)?,
        }
    };

    let started = Instant::now();
    let manifest =
        write_campaign(&dir, &name, &kb1, &kb2, &gold, &config, &crowd, seed, &mode, shards)?;
    println!(
        "planned {} shard(s) in {:.1?} ({} mode)",
        manifest.shards.len(),
        started.elapsed(),
        manifest.mode
    );
    println!(
        "  {} candidate pairs scored, {} retained into shards, {} gold pairs",
        manifest.candidate_count, manifest.pairs_total, manifest.gold_total
    );
    println!("  {}", dir.join("campaign.json").display());
    Ok(())
}

fn cmd_scale_run(opts: &Opts) -> Result<(), CliError> {
    let dir = PathBuf::from(opts.required("dir")?);
    let workers: usize = opts.parsed("workers", 0)?;

    let started = Instant::now();
    let merged = if workers == 0 {
        run_sharded_local(&dir).map_err(CliError::Failed)?
    } else {
        run_sharded_processes(&dir, workers, opts)?
    };
    println!(
        "campaign {} merged in {:.1?} ({} shards)",
        merged.campaign,
        started.elapsed(),
        merged.shards
    );
    print_merged(&merged);
    if let Some(path) = opts.get("out") {
        std::fs::write(path, merged.to_json().to_pretty_string())?;
        println!("  wrote {path}");
    }
    Ok(())
}

fn print_merged(m: &MergedOutcome) {
    println!(
        "  {} candidate pairs, {} matches ({} of {} gold)",
        m.pairs_total, m.matches_total, m.gold_matched, m.gold_total
    );
    println!("  {} questions over {} loops", m.questions_total, m.loops_total);
    println!(
        "  precision {:.1}%  recall {:.1}%  F1 {:.1}%",
        100.0 * m.precision,
        100.0 * m.recall,
        100.0 * m.f1
    );
    println!(
        "  digests: outcome {:016x}, transcript {:016x}, eval {:016x}",
        m.outcome_digest, m.transcript_digest, m.eval_digest
    );
}

/// The multi-process path: an embedded coordinator (or the rempd at
/// `--url`), `workers` separate `rempctl shard-worker` OS processes,
/// and the merged outcome fetched back over HTTP.
fn run_sharded_processes(
    dir: &Path,
    workers: usize,
    opts: &Opts,
) -> Result<MergedOutcome, CliError> {
    let lease_ms: u64 = opts.parsed("lease-ms", DEFAULT_LEASE_MS)?;
    // Workers and a possibly pre-existing rempd must agree on the
    // campaign path, whatever directory each process runs in.
    let dir =
        dir.canonicalize().map_err(|e| CliError::Failed(format!("{}: {e}", dir.display())))?;

    let mut embedded: Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)> = None;
    let addr = match opts.get("url") {
        Some(url) => url.to_owned(),
        None => {
            let config = ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() };
            let server = Server::bind(&config).map_err(|e| CliError::Failed(e.to_string()))?;
            let addr = server.local_addr().to_string();
            let stop = Arc::new(AtomicBool::new(false));
            let flag = Arc::clone(&stop);
            let join = std::thread::spawn(move || {
                let _ = server.run(&flag);
            });
            embedded = Some((stop, join));
            addr
        }
    };

    let result = (|| {
        let client = ServeClient::new(addr.clone());
        let created = client
            .post(
                "/scale/jobs",
                &Json::Obj(vec![
                    ("dir".to_owned(), Json::from(dir.display().to_string())),
                    ("lease_ms".to_owned(), Json::from(lease_ms)),
                ]),
            )
            .map_err(|e| CliError::Failed(e.to_string()))?;
        let job = created
            .get("job")
            .and_then(Json::as_str)
            .ok_or_else(|| CliError::Failed("coordinator did not return a job id".into()))?
            .to_owned();
        let total = created.get("total").and_then(Json::as_u64).unwrap_or(0);
        println!(
            "coordinating job {job} on http://{addr}: {total} shard(s), \
             {workers} worker process(es)"
        );

        let exe = std::env::current_exe()?;
        let mut children = Vec::new();
        for i in 0..workers {
            let child = std::process::Command::new(&exe)
                .args(["shard-worker", "--url", &addr, "--job", &job])
                .args(["--worker", &format!("proc{i}")])
                .spawn()
                .map_err(|e| CliError::Failed(format!("spawning shard-worker: {e}")))?;
            children.push(child);
        }
        for mut child in children {
            let status = child.wait()?;
            if !status.success() {
                return Err(CliError::Failed(format!("a shard-worker process failed ({status})")));
            }
        }

        let outcome = client
            .get(&format!("/scale/jobs/{job}/outcome"))
            .map_err(|e| CliError::Failed(e.to_string()))?;
        MergedOutcome::from_json(&outcome).map_err(CliError::Failed)
    })();

    if let Some((stop, join)) = embedded {
        stop.store(true, Ordering::SeqCst);
        let _ = join.join();
    }
    result
}

fn cmd_shard_worker(opts: &Opts) -> Result<(), CliError> {
    let client = ServeClient::new(opts.required("url")?);
    let job = opts.required("job")?.to_owned();
    let default_worker = format!("worker-{}", std::process::id());
    let worker = opts.get("worker").unwrap_or(&default_worker).to_owned();
    let poll_ms: u64 = opts.parsed("poll-ms", 200)?;

    let mut processed = 0usize;
    loop {
        let next = client
            .post(
                &format!("/scale/jobs/{job}/next"),
                &Json::Obj(vec![("worker".to_owned(), Json::from(worker.as_str()))]),
            )
            .map_err(|e| CliError::Failed(e.to_string()))?;
        let Some(shard) = next.get("shard").and_then(Json::as_u64) else {
            if next.get("done").and_then(Json::as_bool).unwrap_or(false) {
                break;
            }
            // Everything pending is leased elsewhere; wait for a
            // reclaim or for the job to finish.
            std::thread::sleep(Duration::from_millis(poll_ms.max(10)));
            continue;
        };
        let path = next
            .get("path")
            .and_then(Json::as_str)
            .ok_or_else(|| CliError::Failed("lease without a shard path".into()))?
            .to_owned();

        // Heartbeat in the background while the shard computes, so a
        // long shard never loses its lease mid-flight.
        let stop = Arc::new(AtomicBool::new(false));
        let beat = {
            let (stop, client, job, worker) =
                (Arc::clone(&stop), client.clone(), job.clone(), worker.clone());
            std::thread::spawn(move || {
                let mut ticks = 0u32;
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(250));
                    ticks += 1;
                    if ticks.is_multiple_of(40) {
                        let _ = client.post(
                            &format!("/scale/jobs/{job}/heartbeat"),
                            &Json::Obj(vec![
                                ("worker".to_owned(), Json::from(worker.as_str())),
                                ("shard".to_owned(), Json::from(shard)),
                            ]),
                        );
                    }
                }
            })
        };
        let started = Instant::now();
        let result = process_shard(Path::new(&path));
        stop.store(true, Ordering::SeqCst);
        let _ = beat.join();
        let result = result.map_err(CliError::Failed)?;

        let ack = client
            .post(&format!("/scale/jobs/{job}/result"), &result.to_json())
            .map_err(|e| CliError::Failed(e.to_string()))?;
        processed += 1;
        println!(
            "[{worker}] shard {shard}: {} pairs, {} questions in {:.1?} (accepted: {})",
            result.pairs,
            result.questions_asked,
            started.elapsed(),
            ack.get("accepted").and_then(Json::as_bool).unwrap_or(false)
        );
    }
    println!("[{worker}] done ({processed} shard(s) processed)");
    Ok(())
}

fn cmd_bench_scale(opts: &Opts) -> Result<(), CliError> {
    let mut options = ScaleBenchOptions::default();
    if let Some(raw) = opts.get("points") {
        options.points = raw
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("--points: cannot parse {p:?}")))
            })
            .collect::<Result<_, _>>()?;
        if options.points.is_empty() {
            return Err(CliError::Usage("--points: needs at least one entity count".into()));
        }
    }
    options.seed = opts.parsed("seed", options.seed)?;
    options.budget = opts.parsed("budget", options.budget)?;
    if let Some(mb) = opts.get("max-rss-mb") {
        options.max_rss_mb = Some(
            mb.parse()
                .map_err(|_| CliError::Usage(format!("--max-rss-mb: cannot parse {mb:?}")))?,
        );
    }
    if let Some(dir) = opts.get("work-dir") {
        options.work_dir = Some(PathBuf::from(dir));
    }
    options.keep_artifacts = opts.get("keep-artifacts").is_some();
    let out = opts.get("out").unwrap_or("BENCH_scale.json");

    let started = Instant::now();
    let report = run_scale_bench(&options).map_err(CliError::Failed)?;
    println!("scale bench finished in {:.1?}", started.elapsed());
    for p in &report.points {
        let rss = match p.peak_rss_bytes {
            Some(bytes) => format!("{:.0} MiB", bytes as f64 / (1024.0 * 1024.0)),
            None => "unreadable".to_owned(),
        };
        println!(
            "  {:>9} entities: {:>9} pairs / {:>3} shards; gen {:.1}s, plan {:.1}s, \
             run {:.1}s; {} questions, F1 {:.3}; peak rss {rss}",
            p.entities,
            p.pairs,
            p.shards,
            p.gen_seconds,
            p.plan_seconds,
            p.run_seconds,
            p.questions,
            p.f1
        );
    }
    std::fs::write(out, report.to_json().to_pretty_string())?;
    println!("  wrote {out}");
    if let Some(mb) = options.max_rss_mb {
        if !report.rss_ok {
            return Err(CliError::Failed(format!(
                "peak RSS exceeded the {mb} MiB bound (see {out})"
            )));
        }
        println!("  bounded-RSS gate passed (every point <= {mb} MiB)");
    }
    Ok(())
}

fn default_name(path: &Path) -> String {
    path.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_else(|| "kb".to_owned())
}
