//! # Remp — Crowdsourced Collective Entity Resolution with Relational Match Propagation
//!
//! A Rust reproduction of Huang, Hu, Bao & Qu (ICDE 2020). Remp resolves
//! entities across two knowledge bases by asking human workers a small
//! number of pairwise questions and *propagating* each confirmed match
//! through the relationship structure to distant entity pairs — including
//! across entity types, which transitivity- and monotonicity-based
//! crowdsourced ER cannot do.
//!
//! ## Quick start: the session API
//!
//! The paper's human-machine loop is asynchronous — questions are posted
//! to a crowd platform and answers trickle back — so the primary
//! interface inverts the control flow: *you* own the loop. A
//! [`core::RempSession`] hands you typed [`core::Question`]s in batches;
//! you collect worker [`crowd::Label`]s however you like (MTurk, an
//! internal tool, a simulation) and submit them back; truth inference
//! (Eq. 17) and relational match propagation (Eq. 11) run incrementally
//! as each answer lands.
//!
//! ```
//! use remp::datasets::{generate, iimb};
//! use remp::core::{evaluate_matches, Remp, RempConfig};
//! use remp::crowd::{LabelSource, SimulatedCrowd};
//!
//! // A two-KB world shaped like the paper's IIMB benchmark, and a
//! // mixed-quality simulated crowd (5 labels per question).
//! let dataset = generate(&iimb(0.1));
//! let mut crowd = SimulatedCrowd::paper_default(42);
//!
//! // Stage 1 (ER-graph construction) runs in `begin`; stages 2–4 run
//! // lazily as the session is driven.
//! let remp = Remp::new(RempConfig::default());
//! let mut session = remp.begin(&dataset.kb1, &dataset.kb2)?;
//! while let Some(batch) = session.next_batch()? {
//!     for question in &batch.questions {
//!         // A real deployment posts `question.context` to workers and
//!         // submits their answers whenever they arrive — even out of
//!         // order, or after a checkpoint/resume round trip.
//!         let (u1, u2) = question.pair;
//!         let labels = crowd.label(dataset.is_match(u1, u2));
//!         session.submit(question.id, labels)?;
//!     }
//! }
//! let outcome = session.finish(); // isolated-pair classifier + results
//!
//! let eval = evaluate_matches(outcome.matches.iter().copied(), &dataset.gold);
//! println!("F1 = {:.3} with {} questions", eval.f1, outcome.questions_asked);
//! assert!(outcome.questions_asked > 0);
//! # Ok::<(), remp::core::RempError>(())
//! ```
//!
//! Long campaigns can pause and resume:
//! [`core::RempSession::checkpoint`] serializes the dynamic state to a
//! small JSON document and [`core::RempSession::resume`] picks the
//! campaign back up from it.
//!
//! ## Convenience path: `Remp::run`
//!
//! When a simulated crowd is all you need (tests, benches, the paper's
//! experiments), [`core::Remp::run`] drains a session against a
//! [`crowd::LabelSource`] in one call:
//!
//! ```
//! use remp::datasets::{generate, iimb};
//! use remp::core::{Remp, RempConfig};
//! use remp::crowd::SimulatedCrowd;
//!
//! let dataset = generate(&iimb(0.1));
//! let mut crowd = SimulatedCrowd::paper_default(42);
//! let remp = Remp::new(RempConfig::default());
//! let outcome = remp.run(
//!     &dataset.kb1,
//!     &dataset.kb2,
//!     &|u1, u2| dataset.is_match(u1, u2),
//!     &mut crowd,
//! );
//! assert!(outcome.questions_asked > 0);
//! ```
//!
//! ## Crate map
//!
//! | module | contents | paper section |
//! |---|---|---|
//! | [`par`] | dependency-free worker pool (`Parallelism`) | — |
//! | [`obs`] | metrics registry, stage spans, structured event log | — |
//! | [`kb`] | knowledge-base substrate | §III-A |
//! | [`simil`] | similarity measures & vectors | §IV-B/D |
//! | [`ergraph`] | ER-graph construction & pruning | §IV |
//! | [`propagation`] | consistency, neighbour & distant propagation | §V, §VI-B |
//! | [`selection`] | submodular question selection | §VI |
//! | [`crowd`] | workers, labels, truth inference | §VII-A |
//! | [`forest`] | random forests (isolated pairs) | §VII-B |
//! | [`core`] | the Remp pipeline, metrics, experiment drivers | §III-B |
//! | [`datasets`] | synthetic dataset presets (Table II shapes) | §VIII |
//! | [`ingest`] | file loaders, `.rkb` snapshots | Table II |
//! | [`serve`] | the `rempd` campaign server, client, wire crowd | §VII-A |
//! | [`sim`] | discrete-tick campaign simulator, adversarial crowds | §VIII |
//! | [`scale`] | million-entity generator, blocked candidates, shards | §VIII-E |
//! | [`baselines`] | PARIS, SiGMa, HIKE, POWER, Corleone | §II, §VIII |
//!
//! The `rempctl` CLI (this package's binary) chains the layers:
//! `export` → `import` → `inspect` → `run` | `serve` | `drive` | `bench`.

pub use remp_baselines as baselines;
pub use remp_core as core;
pub use remp_crowd as crowd;
pub use remp_datasets as datasets;
pub use remp_ergraph as ergraph;
pub use remp_forest as forest;
pub use remp_ingest as ingest;
pub use remp_kb as kb;
pub use remp_obs as obs;
pub use remp_par as par;
pub use remp_propagation as propagation;
pub use remp_scale as scale;
pub use remp_selection as selection;
pub use remp_serve as serve;
pub use remp_sim as sim;
pub use remp_simil as simil;
