//! # Remp — Crowdsourced Collective Entity Resolution with Relational Match Propagation
//!
//! A Rust reproduction of Huang, Hu, Bao & Qu (ICDE 2020). Remp resolves
//! entities across two knowledge bases by asking human workers a small
//! number of pairwise questions and *propagating* each confirmed match
//! through the relationship structure to distant entity pairs — including
//! across entity types, which transitivity- and monotonicity-based
//! crowdsourced ER cannot do.
//!
//! ## Quick start
//!
//! ```
//! use remp::datasets::{generate, iimb};
//! use remp::core::{Remp, RempConfig, evaluate_matches};
//! use remp::crowd::SimulatedCrowd;
//!
//! // A two-KB world shaped like the paper's IIMB benchmark.
//! let dataset = generate(&iimb(0.1));
//!
//! // A mixed-quality simulated crowd (5 labels per question).
//! let mut crowd = SimulatedCrowd::paper_default(42);
//!
//! // Run the four-stage pipeline to convergence.
//! let remp = Remp::new(RempConfig::default());
//! let outcome = remp.run(
//!     &dataset.kb1,
//!     &dataset.kb2,
//!     &|u1, u2| dataset.is_match(u1, u2),
//!     &mut crowd,
//! );
//!
//! let eval = evaluate_matches(outcome.matches.iter().copied(), &dataset.gold);
//! println!("F1 = {:.3} with {} questions", eval.f1, outcome.questions_asked);
//! assert!(outcome.questions_asked > 0);
//! ```
//!
//! ## Crate map
//!
//! | module | contents | paper section |
//! |---|---|---|
//! | [`kb`] | knowledge-base substrate | §III-A |
//! | [`simil`] | similarity measures & vectors | §IV-B/D |
//! | [`ergraph`] | ER-graph construction & pruning | §IV |
//! | [`propagation`] | consistency, neighbour & distant propagation | §V, §VI-B |
//! | [`selection`] | submodular question selection | §VI |
//! | [`crowd`] | workers, labels, truth inference | §VII-A |
//! | [`forest`] | random forests (isolated pairs) | §VII-B |
//! | [`core`] | the Remp pipeline, metrics, experiment drivers | §III-B |
//! | [`datasets`] | synthetic dataset presets (Table II shapes) | §VIII |
//! | [`baselines`] | PARIS, SiGMa, HIKE, POWER, Corleone | §II, §VIII |

pub use remp_baselines as baselines;
pub use remp_core as core;
pub use remp_crowd as crowd;
pub use remp_datasets as datasets;
pub use remp_ergraph as ergraph;
pub use remp_forest as forest;
pub use remp_kb as kb;
pub use remp_propagation as propagation;
pub use remp_selection as selection;
pub use remp_simil as simil;
